//! The FlexRAN agent.
//!
//! One agent sits on each eNodeB (paper Fig. 2). It owns the data plane,
//! hosts the eNodeB control modules with their VSF caches, runs the
//! message handler & dispatcher for the FlexRAN protocol, and the
//! Reports & Events manager. Control can be local (delegated VSFs),
//! remote (the master's centralized applications pushing commands), or a
//! mix — switchable at runtime through VSF updation + policy
//! reconfiguration without service interruption (§5.4).
//!
//! Each TTI runs in two phases, mirroring the data plane's pipeline:
//!
//! * [`FlexranAgent::phase_a`] — data-plane bookkeeping, then protocol
//!   intake (commands, delegation, subscriptions), then *local* VSF
//!   scheduling for this subframe.
//! * [`FlexranAgent::phase_b`] — the subframe commits; events, sync
//!   triggers and due statistics reports go out to the master.
//!
//! The split exists so a multi-cell harness can determine the
//! interference coupling (which cells transmit) between the two phases.

use flexran_proto::messages::delegation::{DelegationAck, VsfArtifact, VsfPush};
use flexran_proto::messages::stats::{ReportConfig, ReportFlags, ReportType};
use flexran_proto::messages::{
    ConfigBundleAck, ConfigBundlePb, ConfigReply, EventNotification, FlexranMessage, Header,
    SubframeTrigger,
};
use flexran_proto::transport::Transport;
use flexran_stack::enb::{Enb, PhyView};
use flexran_stack::events::EnbEvent;
use flexran_stack::mac::dci::{DlSchedulingDecision, UlSchedulingDecision};
use flexran_stack::mac::scheduler::{
    DlSchedulerInput, DlSchedulerOutput, UlSchedulerInput, UlSchedulerOutput,
};
use flexran_types::ids::{CellId, Rnti};
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

/// A handover decision awaiting completion at the target side (the
/// harness or an X2-equivalent moves the UE context).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HandoverRequest {
    pub cell: CellId,
    pub rnti: Rnti,
    /// Radio-site key chosen by a *local* handover VSF.
    pub target_site: Option<u32>,
    /// Target addressed explicitly by a master `HandoverCommand`.
    pub target_enb: Option<u32>,
    pub target_cell: Option<u16>,
}

use crate::cmi::{
    MacControlModule, RrcControlModule, MAC_DL_SCHEDULER, MAC_UL_SCHEDULER, RRC_HANDOVER,
};
use crate::liveness::{FailoverState, LivenessConfig, LivenessCounters, LivenessTracker};
use crate::policy::PolicyDoc;
use crate::reports::ReportsManager;
use crate::vsf::{verify_push, VsfImpl, VsfRegistry};

/// Agent configuration.
#[derive(Debug, Clone)]
pub struct AgentConfig {
    /// Registry key of the downlink scheduler active at start
    /// (`None` = no local DL scheduling until the master configures one).
    pub initial_dl_scheduler: Option<String>,
    pub initial_ul_scheduler: Option<String>,
    /// Subframe-sync period in TTIs towards the master (0 = disabled;
    /// the centralized-scheduling experiments run with 1).
    pub sync_period: u64,
    pub capabilities: Vec<String>,
    /// Heartbeat/failover knobs (default: liveness tracking disabled).
    pub liveness: LivenessConfig,
}

impl Default for AgentConfig {
    fn default() -> Self {
        AgentConfig {
            initial_dl_scheduler: Some("round-robin".into()),
            initial_ul_scheduler: Some("ul-round-robin".into()),
            sync_period: 0,
            capabilities: vec!["dl_scheduling".into(), "vsf_dsl".into()],
            liveness: LivenessConfig::default(),
        }
    }
}

/// Operational counters (observability and tests).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AgentCounters {
    pub rx_messages: u64,
    pub transport_errors: u64,
    pub command_errors: u64,
    pub pushes_accepted: u64,
    pub pushes_rejected: u64,
    pub policies_applied: u64,
    pub policy_errors: u64,
}

/// The per-eNodeB FlexRAN agent.
pub struct FlexranAgent<T: Transport> {
    enb: Enb,
    transport: T,
    pub mac: MacControlModule,
    pub rrc: RrcControlModule,
    reports: ReportsManager,
    registry: VsfRegistry,
    config: AgentConfig,
    counters: AgentCounters,
    liveness: LivenessTracker,
    /// DL scheduler that was active when failover swapped in the
    /// fallback; restored when the session rejoins.
    pre_failover_dl: Option<String>,
    /// (version, signature) of the fleet config bundle currently
    /// applied; `(0, 0)` until the first rollout reaches this agent.
    /// Soft state: a crash-restart wipes it, and the advertised zero
    /// signature is what draws the master's drift re-push.
    active_config: (u64, u64),
    hello_sent: bool,
    /// Chaos hook: while `true`, the control thread is over its TTI
    /// budget — subframes still commit but intake/liveness/scheduling
    /// are suspended (see [`FlexranAgent::set_stalled`]).
    stalled: bool,
    outbox_acks: Vec<DelegationAck>,
    handover_requests: Vec<HandoverRequest>,
    /// Reusable scheduler input/output buffers: phase A refills these in
    /// place every TTI instead of allocating fresh ones (the hot path's
    /// no-steady-state-allocation contract).
    sched_scratch: SchedScratch,
}

#[derive(Default)]
struct SchedScratch {
    dl_in: DlSchedulerInput,
    dl_out: DlSchedulerOutput,
    ul_in: UlSchedulerInput,
    ul_out: UlSchedulerOutput,
}

/// Preload all registry built-ins into fresh module caches and activate
/// the configured initial schedulers — the "hardcoded policies" baseline
/// of §4.3.1. Shared by construction and crash-restart so a restarted
/// agent comes back with exactly the state a freshly booted one has.
fn preload_modules(
    registry: &VsfRegistry,
    config: &AgentConfig,
) -> (MacControlModule, RrcControlModule) {
    let mut mac = MacControlModule::new();
    let mut rrc = RrcControlModule::new();
    for key in registry.keys() {
        // lint:allow(panic): keys() only lists instantiable entries.
        match registry.instantiate(key).expect("listed key") {
            VsfImpl::DlScheduler(s) => mac.dl.insert(key, s),
            VsfImpl::UlScheduler(s) => mac.ul.insert(key, s),
            VsfImpl::Handover(h) => rrc.handover.insert(key, h),
        }
    }
    if let Some(k) = &config.initial_dl_scheduler {
        // A misconfigured initial scheduler is a boot-time programming
        // error, caught by every test topology.
        mac.dl
            .activate(k)
            // lint:allow(panic): boot-time contract, see above.
            .expect("initial DL scheduler in registry");
    }
    if let Some(k) = &config.initial_ul_scheduler {
        mac.ul
            .activate(k)
            // lint:allow(panic): same boot-time contract as the DL slot.
            .expect("initial UL scheduler in registry");
    }
    (mac, rrc)
}

impl<T: Transport> FlexranAgent<T> {
    /// Build an agent over a data plane and a transport to the master.
    ///
    /// All registry built-ins are preloaded into the module caches (the
    /// "hardcoded policies" baseline of §4.3.1); new behaviour arrives
    /// through VSF pushes.
    pub fn new(enb: Enb, transport: T, registry: VsfRegistry, config: AgentConfig) -> Self {
        let (mac, rrc) = preload_modules(&registry, &config);
        let liveness = LivenessTracker::new(config.liveness.clone());
        FlexranAgent {
            enb,
            transport,
            mac,
            rrc,
            reports: ReportsManager::new(),
            registry,
            config,
            counters: AgentCounters::default(),
            liveness,
            pre_failover_dl: None,
            active_config: (0, 0),
            hello_sent: false,
            stalled: false,
            outbox_acks: Vec::new(),
            handover_requests: Vec::new(),
            sched_scratch: SchedScratch::default(),
        }
    }

    /// Simulate an agent *process* crash followed by a supervisor
    /// restart: every piece of soft control-plane state is lost — VSF
    /// caches fall back to the registry built-ins and the configured
    /// initial schedulers, report subscriptions, liveness history,
    /// pending acks and in-flight handover requests vanish — while the
    /// data plane (the eNodeB itself) keeps running, because the radio
    /// hardware does not reboot with the agent process.
    ///
    /// The restarted agent re-introduces itself with a `Hello` on its
    /// next TTI, which is what lets the master replay delegated state.
    pub fn crash_restart(&mut self) {
        let (mac, rrc) = preload_modules(&self.registry, &self.config);
        self.mac = mac;
        self.rrc = rrc;
        self.reports = ReportsManager::new();
        self.counters = AgentCounters::default();
        self.liveness = LivenessTracker::new(self.config.liveness.clone());
        self.pre_failover_dl = None;
        self.active_config = (0, 0);
        self.hello_sent = false;
        self.stalled = false;
        self.outbox_acks.clear();
        self.handover_requests.clear();
        self.sched_scratch = SchedScratch::default();
    }

    /// Chaos hook: mark the agent's control thread as over (or back
    /// under) its TTI budget. While stalled, subframes still commit —
    /// the data-plane pipeline is hardware-driven — but protocol intake,
    /// liveness probing and local VSF scheduling are suspended, so
    /// inbound traffic piles up in the transport and the master sees the
    /// session go quiet.
    pub fn set_stalled(&mut self, stalled: bool) {
        self.stalled = stalled;
    }

    pub fn is_stalled(&self) -> bool {
        self.stalled
    }

    pub fn enb(&self) -> &Enb {
        &self.enb
    }

    pub fn enb_mut(&mut self) -> &mut Enb {
        &mut self.enb
    }

    pub fn transport(&self) -> &T {
        &self.transport
    }

    pub fn transport_mut(&mut self) -> &mut T {
        &mut self.transport
    }

    pub fn counters(&self) -> AgentCounters {
        self.counters
    }

    /// `(version, signature)` of the applied fleet config bundle
    /// (`(0, 0)` = factory state). Chaos oracle #9 asserts the signature
    /// stays within the set the master has issued.
    pub fn active_config(&self) -> (u64, u64) {
        self.active_config
    }

    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// Where the control-plane session currently stands.
    pub fn failover_state(&self) -> FailoverState {
        self.liveness.state()
    }

    pub fn liveness_counters(&self) -> LivenessCounters {
        self.liveness.counters()
    }

    /// Approximate heap footprint of the agent layer on top of the data
    /// plane: the VSF caches, subscriptions and outboxes (the Fig. 6a
    /// memory-overhead comparison).
    pub fn heap_bytes(&self) -> usize {
        self.enb.heap_bytes()
            + (self.mac.dl.len() + self.mac.ul.len() + self.rrc.handover.len()) * 256
            + self.reports.n_subscriptions() * 96
            + self.outbox_acks.capacity() * std::mem::size_of::<DelegationAck>()
            + self.handover_requests.capacity() * std::mem::size_of::<HandoverRequest>()
    }

    /// Handover decisions made since the last call (by the local RRC VSF
    /// or by master commands). The harness (standing in for X2) completes
    /// them at the target eNodeB.
    pub fn take_handover_requests(&mut self) -> Vec<HandoverRequest> {
        std::mem::take(&mut self.handover_requests)
    }

    /// Phase 1 of the TTI (see module docs).
    pub fn phase_a(&mut self, tti: Tti, phy: &mut dyn PhyView) {
        if self.stalled {
            // The data plane is hardware-driven: the subframe opens even
            // when the control thread has blown its budget.
            self.enb.begin_tti(tti, phy);
            return;
        }
        if !self.hello_sent {
            // lint:allow(alloc-reach) hello composition runs once per (re)connect
            self.send_hello();
        }
        self.enb.begin_tti(tti, phy);
        // Protocol intake.
        loop {
            // lint:allow(alloc-reach) decode materializes owned messages — arrival-driven
            match self.transport.try_recv() {
                Ok(Some((header, msg))) => {
                    self.counters.rx_messages += 1;
                    if self.liveness.on_rx(tti) {
                        // LocalControl → Rejoining: re-introduce ourselves
                        // so the master replays delegated state.
                        self.hello_sent = false;
                    }
                    // Command/config handling runs only when a control
                    // message arrived — episodic vs the TTI loop.
                    // lint:allow(alloc-reach)
                    self.handle_message(header, msg, tti);
                }
                Ok(None) => break,
                Err(_) => {
                    self.counters.transport_errors += 1;
                    break;
                }
            }
        }
        // Liveness bookkeeping: probe the master, and on a declared
        // outage swap the DL scheduler to the cached local fallback (the
        // §5.4 pointer swap, driven by missed heartbeats).
        let tick = self.liveness.tick(tti);
        if let Some(seq) = tick.probe {
            let probe = flexran_proto::messages::Heartbeat {
                seq,
                tti: tti.0,
                applied_config: self.active_config.1,
            };
            let _ = self
                .transport
                // lint:allow(alloc-reach) wire frame growth is pooled; probe is paced
                .send(Header::default(), &FlexranMessage::Heartbeat(probe));
        }
        if tick.entered_local_control {
            // Entering local control happens once per master outage, not
            // per TTI. lint:allow(alloc-reach)
            let fallback = self.liveness.config().fallback_dl_scheduler.clone();
            if self.mac.dl.active_name() != Some(fallback.as_str()) {
                // lint:allow(alloc-reach) failover bookkeeping, once per outage
                self.pre_failover_dl = self.mac.dl.active_name().map(String::from);
            }
            // lint:allow(alloc-reach) VSF swap to the fallback scheduler, once per outage
            if self.mac.dl.activate(&fallback).is_err() {
                self.counters.command_errors += 1;
            }
        }
        // Local scheduling through the active VSFs. Inputs and outputs
        // are refilled in place (`SchedScratch`); only a non-empty
        // decision hands its DCI vector off to the data plane.
        for ci in 0..self.enb.n_cells() {
            let cell = self.enb.cell_id_at(ci);
            let scratch = &mut self.sched_scratch;
            if let Some(sched) = self.mac.dl.active_mut() {
                if self
                    .enb
                    .dl_scheduler_input_into(cell, tti, tti, &mut scratch.dl_in)
                    .is_ok()
                {
                    sched.schedule_dl_into(&scratch.dl_in, &mut scratch.dl_out);
                    if !scratch.dl_out.dcis.is_empty() {
                        // Hand off through a recycled buffer (returned to
                        // the cell's pool once executed) — the scratch
                        // vector keeps its capacity and the steady-state
                        // loop stays allocation-free.
                        let mut dcis = self.enb.recycled_dci_buffer(cell);
                        dcis.extend_from_slice(&scratch.dl_out.dcis);
                        let d = DlSchedulingDecision {
                            cell,
                            target: tti,
                            dcis,
                        };
                        if self.enb.submit_dl_decision(d, tti).is_err() {
                            self.counters.command_errors += 1;
                        }
                    }
                }
            }
            if let Some(sched) = self.mac.ul.active_mut() {
                if self
                    .enb
                    .ul_scheduler_input_into(cell, tti, tti, &mut scratch.ul_in)
                    .is_ok()
                {
                    sched.schedule_ul_into(&scratch.ul_in, &mut scratch.ul_out);
                    if !scratch.ul_out.grants.is_empty() {
                        let mut grants = self.enb.recycled_grant_buffer(cell);
                        grants.extend_from_slice(&scratch.ul_out.grants);
                        let d = UlSchedulingDecision {
                            cell,
                            target: tti,
                            grants,
                        };
                        if self.enb.submit_ul_decision(d, tti).is_err() {
                            self.counters.command_errors += 1;
                        }
                    }
                }
            }
        }
    }

    /// Phase 2 of the TTI (see module docs). Returns the data-plane
    /// events of this TTI (also forwarded to the master).
    pub fn phase_b(&mut self, tti: Tti, phy: &mut dyn PhyView) -> Vec<EnbEvent> {
        self.enb.finish_tti(tti, phy);
        let events = self.enb.take_events();
        if self.stalled {
            // Subframe committed, but the control thread never got to
            // run: no events, syncs or reports reach the master this TTI.
            return events;
        }
        let enb_id = self.enb.config().enb_id;
        for ev in &events {
            // Local handover policy reacts to measurement reports.
            if let EnbEvent::MeasurementReport {
                cell,
                rnti,
                serving_rsrp_dbm,
                neighbours,
                ..
            } = ev
            {
                if let Some(policy) = self.rrc.handover.active_mut() {
                    if let Some(target) = policy.on_measurement(*serving_rsrp_dbm, neighbours) {
                        if self.enb.start_handover(*cell, *rnti, tti).is_ok() {
                            self.handover_requests.push(HandoverRequest {
                                cell: *cell,
                                rnti: *rnti,
                                target_site: Some(target),
                                target_enb: None,
                                target_cell: None,
                            });
                        }
                    }
                }
            }
            // lint:allow(alloc-reach) notification composition — event-driven
            let note = EventNotification::from_enb_event(enb_id, ev);
            let _ = self
                .transport
                // lint:allow(alloc-reach) wire frame growth is pooled; send is event-driven
                .send(Header::default(), &FlexranMessage::EventNotification(note));
        }
        if self.config.sync_period > 0 && tti.0.is_multiple_of(self.config.sync_period) {
            let sfnsf = tti.sfn_sf();
            // lint:allow(alloc-reach) rides the sync_period, amortized
            let _ = self.transport.send(
                Header::default(),
                &FlexranMessage::SubframeTrigger(SubframeTrigger {
                    enb_id,
                    sfn: sfnsf.sfn,
                    sf: sfnsf.sf,
                    tti: tti.0,
                }),
            );
        }
        // lint:allow(alloc-reach) report composition — interval/trigger-driven
        for (xid, reply) in self.reports.due(tti, &self.enb) {
            let _ = self
                .transport
                // lint:allow(alloc-reach) wire frame growth is pooled; reply rides the report interval
                .send(Header::with_xid(xid), &FlexranMessage::StatsReply(reply));
        }
        for ack in std::mem::take(&mut self.outbox_acks) {
            // lint:allow(alloc-reach) ack send — command-driven
            let _ = self.transport.send(
                Header::with_xid(ack.xid),
                &FlexranMessage::DelegationAck(ack),
            );
        }
        events
    }

    /// Convenience for single-eNodeB scenarios: both phases back to back.
    pub fn run_tti(&mut self, tti: Tti, phy: &mut dyn PhyView) -> Vec<EnbEvent> {
        self.phase_a(tti, phy);
        self.phase_b(tti, phy)
    }

    // ------------------------------------------------------------------
    // Message handling (the dispatcher of paper Fig. 2)
    // ------------------------------------------------------------------

    fn handle_message(&mut self, header: Header, msg: FlexranMessage, tti: Tti) {
        match msg {
            FlexranMessage::EchoRequest(e) => {
                let _ = self.transport.send(header, &FlexranMessage::EchoReply(e));
            }
            FlexranMessage::Heartbeat(h) => {
                // Master-originated probe: mirror it back.
                let _ = self
                    .transport
                    .send(header, &FlexranMessage::HeartbeatAck(h));
            }
            FlexranMessage::HeartbeatAck(h) => {
                if self.liveness.on_ack(h.seq) {
                    // Session healthy again: swap the fallback out for the
                    // scheduler that ran before the outage — unless a
                    // replayed policy already changed the active VSF.
                    let fallback = self.liveness.config().fallback_dl_scheduler.clone();
                    if self.mac.dl.active_name() == Some(fallback.as_str()) {
                        if let Some(prev) = self.pre_failover_dl.take() {
                            if self.mac.dl.activate(&prev).is_err() {
                                self.counters.command_errors += 1;
                            }
                        }
                    }
                }
            }
            FlexranMessage::StatsRequest(req) => {
                self.reports.register(header.xid, req.config);
            }
            FlexranMessage::ConfigRequest(_) => {
                self.send_config_reply(header);
            }
            FlexranMessage::ResyncRequest(_) => {
                // A recovered master asks for a full state re-sync: we
                // re-introduce ourselves *first* (so the session is
                // adopted before state lands), then stream the complete
                // picture — cell/UE configuration plus an ALL-flags
                // statistics report — so the rebuilt RIB reconverges
                // without waiting for the next periodic report.
                self.send_hello();
                self.send_config_reply(Header::default());
                let reply = crate::reports::compose_reply(
                    &self.enb,
                    tti,
                    ReportConfig {
                        report_type: ReportType::OneOff,
                        flags: ReportFlags::ALL,
                    },
                );
                let _ = self
                    .transport
                    .send(Header::default(), &FlexranMessage::StatsReply(reply));
            }
            FlexranMessage::DlSchedulingCommand(cmd) => {
                if self.enb.submit_dl_decision(cmd.to_decision(), tti).is_err() {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::UlSchedulingCommand(cmd) => {
                if self.enb.submit_ul_decision(cmd.to_decision(), tti).is_err() {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::HandoverCommand(cmd) => {
                if self
                    .enb
                    .start_handover(CellId(cmd.cell), Rnti(cmd.rnti), tti)
                    .is_ok()
                {
                    self.handover_requests.push(HandoverRequest {
                        cell: CellId(cmd.cell),
                        rnti: Rnti(cmd.rnti),
                        target_site: None,
                        target_enb: Some(cmd.target_enb),
                        target_cell: Some(cmd.target_cell),
                    });
                } else {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::DrxCommand(cmd) => {
                if self
                    .enb
                    .set_drx(
                        CellId(cmd.cell),
                        Rnti(cmd.rnti),
                        cmd.cycle_ttis as u64,
                        cmd.on_duration_ttis as u64,
                    )
                    .is_err()
                {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::ScellCommand(cmd) => {
                if self
                    .enb
                    .set_scell(
                        CellId(cmd.cell),
                        Rnti(cmd.rnti),
                        CellId(cmd.scell),
                        cmd.activate,
                    )
                    .is_err()
                {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::AbsCommand(cmd) => {
                if self
                    .enb
                    .set_abs_pattern(CellId(cmd.cell), cmd.to_pattern())
                    .is_err()
                {
                    self.counters.command_errors += 1;
                }
            }
            FlexranMessage::VsfPush(push) => {
                let result = self.install_vsf(&push);
                match &result {
                    Ok(()) => self.counters.pushes_accepted += 1,
                    Err(_) => self.counters.pushes_rejected += 1,
                }
                self.outbox_acks.push(DelegationAck {
                    xid: header.xid,
                    ok: result.is_ok(),
                    error: result.err().map(|e| e.to_string()).unwrap_or_default(),
                });
            }
            FlexranMessage::PolicyReconfiguration(p) => {
                let result = self.apply_policy(&p.yaml);
                match &result {
                    Ok(()) => self.counters.policies_applied += 1,
                    Err(_) => self.counters.policy_errors += 1,
                }
                self.outbox_acks.push(DelegationAck {
                    xid: header.xid,
                    ok: result.is_ok(),
                    error: result.err().map(|e| e.to_string()).unwrap_or_default(),
                });
            }
            FlexranMessage::ConfigBundlePush(push) => {
                let result = self.apply_bundle(&push.bundle);
                match &result {
                    Ok(()) => self.counters.pushes_accepted += 1,
                    Err(_) => self.counters.pushes_rejected += 1,
                }
                // Acked directly (not via the outbox) so the master sees
                // the verdict the same TTI it drains the transport —
                // rollout gates react one observation cycle sooner.
                let ack = ConfigBundleAck {
                    enb_id: self.enb.config().enb_id,
                    version: push.bundle.version,
                    signature: push.bundle.signature,
                    ok: result.is_ok(),
                    error: result.err().map(|e| e.to_string()).unwrap_or_default(),
                };
                let _ = self
                    .transport
                    .send(header, &FlexranMessage::ConfigBundleAck(ack));
            }
            // Messages an agent never consumes.
            FlexranMessage::Hello(_)
            | FlexranMessage::EchoReply(_)
            | FlexranMessage::ConfigReply(_)
            | FlexranMessage::SubframeTrigger(_)
            | FlexranMessage::StatsReply(_)
            | FlexranMessage::EventNotification(_)
            | FlexranMessage::ConfigBundleAck(_)
            | FlexranMessage::DelegationAck(_) => {}
        }
    }

    fn send_hello(&mut self) {
        let hello = FlexranMessage::Hello(flexran_proto::messages::Hello {
            enb_id: self.enb.config().enb_id,
            n_cells: self.enb.cell_ids().len() as u32,
            capabilities: self.config.capabilities.clone(),
            applied_config: self.active_config.1,
        });
        let _ = self.transport.send(Header::default(), &hello);
        self.hello_sent = true;
    }

    fn send_config_reply(&mut self, header: Header) {
        let mut reply = ConfigReply {
            enb_id: self.enb.config().enb_id,
            cells: Vec::new(),
            ues: Vec::new(),
        };
        for cell in self.enb.cell_ids() {
            if let Ok(cfg) = self.enb.cell_config(cell) {
                reply
                    .cells
                    .push(flexran_proto::messages::config::CellConfigPb::from_config(
                        cfg,
                    ));
            }
            if let Ok(ues) = self.enb.ue_stats(cell) {
                for u in ues {
                    reply.ues.push(flexran_proto::messages::config::UeConfigPb {
                        rnti: u.rnti.0,
                        pcell: cell.0,
                        transmission_mode: 1,
                        slice: u.slice.0,
                        ue_category: 4,
                    });
                }
            }
        }
        let _ = self
            .transport
            .send(header, &FlexranMessage::ConfigReply(reply));
    }

    /// VSF updation: verify, build, cache.
    fn install_vsf(&mut self, push: &VsfPush) -> Result<()> {
        verify_push(push)?;
        let imp = match &push.artifact {
            VsfArtifact::Registry { key } => self.registry.instantiate(key)?,
            VsfArtifact::Dsl { source } => match (push.module.as_str(), push.vsf.as_str()) {
                ("mac", MAC_DL_SCHEDULER) => {
                    VsfImpl::DlScheduler(Box::new(crate::dsl::DslScheduler::compile(source)?))
                }
                (m, v) => {
                    return Err(FlexError::Delegation(format!(
                        "DSL artifacts are only supported for mac/{MAC_DL_SCHEDULER}, not {m}/{v}"
                    )))
                }
            },
        };
        match (push.module.as_str(), push.vsf.as_str(), imp) {
            ("mac", MAC_DL_SCHEDULER, VsfImpl::DlScheduler(s)) => {
                self.mac.dl.insert(&push.name, s);
                Ok(())
            }
            ("mac", MAC_UL_SCHEDULER, VsfImpl::UlScheduler(s)) => {
                self.mac.ul.insert(&push.name, s);
                Ok(())
            }
            ("rrc", RRC_HANDOVER, VsfImpl::Handover(h)) => {
                self.rrc.handover.insert(&push.name, h);
                Ok(())
            }
            (m, v, imp) => Err(FlexError::Delegation(format!(
                "artifact of kind '{}' does not fit slot {m}/{v}",
                imp.kind()
            ))),
        }
    }

    /// Apply a fleet config bundle transactionally: *validate* every
    /// piece (signature, policy document, VSF instantiation) before
    /// *swapping* any module state, so a bad bundle leaves the agent
    /// exactly as it was and the nack tells the rollout gate why.
    ///
    /// The swap itself reuses the pre-failover restore machinery: if the
    /// policy application fails halfway (it can — parameter validation
    /// happens against the live scheduler), the previously active DL
    /// scheduler is reinstated before the error propagates.
    fn apply_bundle(&mut self, bundle: &ConfigBundlePb) -> Result<()> {
        if !bundle.verify() {
            return Err(FlexError::Delegation(format!(
                "config bundle v{} failed signature verification",
                bundle.version
            )));
        }
        // Validation phase: nothing below may touch module state.
        let doc = if bundle.policy_yaml.is_empty() {
            None
        } else {
            Some(PolicyDoc::parse(&bundle.policy_yaml)?)
        };
        let vsf = if bundle.vsf_key.is_empty() {
            None
        } else {
            Some((
                bundle.vsf_key.clone(),
                self.registry.instantiate(&bundle.vsf_key)?,
            ))
        };
        if !bundle.scheduler.is_empty()
            && bundle.scheduler != bundle.vsf_key
            && !self.mac.dl.contains(&bundle.scheduler)
        {
            return Err(FlexError::Delegation(format!(
                "bundle selects unknown DL scheduler '{}'",
                bundle.scheduler
            )));
        }
        // Swap phase.
        let prev_dl = self.mac.dl.active_name().map(String::from);
        if let Some((key, imp)) = vsf {
            match imp {
                VsfImpl::DlScheduler(s) => self.mac.dl.insert(&key, s),
                VsfImpl::UlScheduler(s) => self.mac.ul.insert(&key, s),
                VsfImpl::Handover(h) => self.rrc.handover.insert(&key, h),
            }
        }
        if !bundle.scheduler.is_empty() {
            self.mac.dl.activate(&bundle.scheduler)?;
        }
        if let Some(doc) = doc {
            if let Err(e) = self.apply_policy_doc(&doc) {
                // Roll the scheduler swap back (same pointer-restore path
                // the failover machinery uses) so a half-applied bundle
                // cannot leave a Frankenstein configuration behind.
                if let Some(prev) = prev_dl {
                    if self.mac.dl.activate(&prev).is_err() {
                        self.counters.command_errors += 1;
                    }
                }
                return Err(e);
            }
        }
        self.active_config = (bundle.version, bundle.signature);
        Ok(())
    }

    /// Policy reconfiguration: behaviour swaps and parameter updates.
    fn apply_policy(&mut self, yaml: &str) -> Result<()> {
        let doc = PolicyDoc::parse(yaml)?;
        self.apply_policy_doc(&doc)
    }

    fn apply_policy_doc(&mut self, doc: &PolicyDoc) -> Result<()> {
        for module in &doc.modules {
            match module.module.as_str() {
                "mac" => {
                    for vsf in &module.vsfs {
                        match vsf.vsf.as_str() {
                            MAC_DL_SCHEDULER => {
                                if let Some(b) = &vsf.behavior {
                                    self.mac.dl.activate(b)?;
                                }
                                if !vsf.parameters.is_empty() {
                                    let target = self.mac.dl.active_mut().ok_or_else(|| {
                                        FlexError::Policy(
                                            "parameters given but no active DL scheduler".into(),
                                        )
                                    })?;
                                    for (k, v) in &vsf.parameters {
                                        target.set_param(k, v.clone())?;
                                    }
                                }
                            }
                            MAC_UL_SCHEDULER => {
                                if let Some(b) = &vsf.behavior {
                                    self.mac.ul.activate(b)?;
                                }
                                if !vsf.parameters.is_empty() {
                                    return Err(FlexError::Policy(
                                        "UL scheduler exposes no parameters".into(),
                                    ));
                                }
                            }
                            other => {
                                return Err(FlexError::Policy(format!(
                                    "mac module has no VSF '{other}'"
                                )))
                            }
                        }
                    }
                }
                "rrc" => {
                    for vsf in &module.vsfs {
                        if vsf.vsf != RRC_HANDOVER {
                            return Err(FlexError::Policy(format!(
                                "rrc module has no VSF '{}'",
                                vsf.vsf
                            )));
                        }
                        if let Some(b) = &vsf.behavior {
                            self.rrc.handover.activate(b)?;
                        }
                        if !vsf.parameters.is_empty() {
                            return Err(FlexError::Policy(
                                "handover policy exposes no wire parameters".into(),
                            ));
                        }
                    }
                }
                "agent" => {
                    for vsf in &module.vsfs {
                        if vsf.vsf != "sync" {
                            return Err(FlexError::Policy(format!(
                                "agent module has no VSF '{}'",
                                vsf.vsf
                            )));
                        }
                        for (k, v) in &vsf.parameters {
                            match k.as_str() {
                                "period" => {
                                    self.config.sync_period =
                                        v.as_i64()
                                            .ok_or_else(|| {
                                                FlexError::Policy("period must be integer".into())
                                            })?
                                            .max(0) as u64;
                                }
                                other => {
                                    return Err(FlexError::Policy(format!(
                                        "agent/sync has no parameter '{other}'"
                                    )))
                                }
                            }
                        }
                    }
                }
                other => {
                    return Err(FlexError::Policy(format!(
                        "unknown control module '{other}'"
                    )))
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vsf::sign_push;
    use flexran_proto::messages::stats::{ReportConfig, ReportFlags, ReportType, StatsRequest};
    use flexran_proto::messages::PolicyReconfiguration;
    use flexran_proto::transport::{channel_pair, ChannelTransport};
    use flexran_stack::enb::{EnbParams, StaticPhyView};
    use flexran_types::config::EnbConfig;
    use flexran_types::ids::{EnbId, SliceId, UeId};
    use flexran_types::units::Bytes;

    const CELL: CellId = CellId(0);

    fn agent_and_master() -> (FlexranAgent<ChannelTransport>, ChannelTransport) {
        let (a_side, m_side) = channel_pair();
        let enb = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
        let agent = FlexranAgent::new(
            enb,
            a_side,
            VsfRegistry::with_builtins(),
            AgentConfig::default(),
        );
        (agent, m_side)
    }

    fn drain(master: &mut ChannelTransport) -> Vec<FlexranMessage> {
        let mut out = Vec::new();
        while let Ok(Some((_, m))) = master.try_recv() {
            out.push(m);
        }
        out
    }

    #[test]
    fn hello_sent_on_first_tti() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        agent.run_tti(Tti(0), &mut phy);
        let msgs = drain(&mut master);
        assert!(matches!(msgs.first(), Some(FlexranMessage::Hello(h)) if h.enb_id == EnbId(1)));
    }

    #[test]
    fn attach_and_traffic_via_local_vsf() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        let rnti = agent
            .enb_mut()
            .rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        let mut attached = false;
        for t in 0..80 {
            for ev in agent.run_tti(Tti(t), &mut phy) {
                if matches!(ev, EnbEvent::UeAttached { .. }) {
                    attached = true;
                }
            }
        }
        assert!(attached);
        // The attach event reached the master too.
        let msgs = drain(&mut master);
        assert!(msgs.iter().any(|m| matches!(
            m,
            FlexranMessage::EventNotification(n)
                if n.kind == flexran_proto::messages::events::EventKind::UeAttached
        )));
        agent
            .enb_mut()
            .inject_dl_traffic(CELL, rnti, Bytes(50_000), Tti(80))
            .unwrap();
        for t in 80..300 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let stats = agent.enb().ue_stat(CELL, rnti).unwrap();
        assert!(stats.dl_delivered_bits >= 50_000 * 8);
    }

    #[test]
    fn periodic_stats_subscription_flows() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::with_xid(42),
                &FlexranMessage::StatsRequest(StatsRequest {
                    config: ReportConfig {
                        report_type: ReportType::Periodic { period: 10 },
                        flags: ReportFlags::ALL,
                    },
                }),
            )
            .unwrap();
        for t in 0..35 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let replies = drain(&mut master)
            .into_iter()
            .filter(|m| matches!(m, FlexranMessage::StatsReply(_)))
            .count();
        assert_eq!(replies, 4, "t=0,10,20,30");
    }

    #[test]
    fn sync_trigger_follows_policy() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::with_xid(1),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "agent:\n  sync:\n    parameters:\n      period: 1\n".into(),
                }),
            )
            .unwrap();
        for t in 0..10 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let msgs = drain(&mut master);
        let syncs = msgs
            .iter()
            .filter(|m| matches!(m, FlexranMessage::SubframeTrigger(_)))
            .count();
        // Policy applied at t=0 → sync from t=0 or t=1 onwards.
        assert!(syncs >= 9, "got {syncs} sync triggers");
        assert!(msgs.iter().any(|m| matches!(
            m,
            FlexranMessage::DelegationAck(a) if a.ok && a.xid == 1
        )));
    }

    #[test]
    fn remote_scheduling_via_commands() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        let rnti = agent
            .enb_mut()
            .rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        // Attach locally first.
        for t in 0..80 {
            agent.run_tti(Tti(t), &mut phy);
        }
        // Switch to the remote stub: local VSF goes silent.
        master
            .send(
                Header::with_xid(2),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: remote-stub\n".into(),
                }),
            )
            .unwrap();
        agent
            .enb_mut()
            .inject_dl_traffic(CELL, rnti, Bytes(20_000), Tti(80))
            .unwrap();
        // A few TTIs with no remote commands: queue must not drain.
        for t in 80..90 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let before = agent.enb().ue_stat(CELL, rnti).unwrap().dl_delivered_bits;
        // Now the master schedules remotely for specific subframes.
        for t in 90..140u64 {
            let cmd = flexran_proto::messages::DlSchedulingCommand {
                enb_id: EnbId(1),
                cell: 0,
                target_tti: t,
                dcis: vec![flexran_proto::messages::commands::DciPb {
                    rnti: rnti.0,
                    n_prb: 50,
                    mcs: 15,
                    ..Default::default()
                }],
            };
            master
                .send(Header::default(), &FlexranMessage::DlSchedulingCommand(cmd))
                .unwrap();
            agent.run_tti(Tti(t), &mut phy);
        }
        let after = agent.enb().ue_stat(CELL, rnti).unwrap().dl_delivered_bits;
        assert!(after > before, "remote decisions must move data");
        assert_eq!(agent.counters().transport_errors, 0);
    }

    #[test]
    fn vsf_push_dsl_and_activate() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        let mut push = VsfPush {
            module: "mac".into(),
            vsf: MAC_DL_SCHEDULER.into(),
            name: "cqi-gate".into(),
            artifact: VsfArtifact::Dsl {
                source: "priority = step(cqi - 9)\n".into(),
            },
            signature: vec![],
        };
        sign_push(&mut push);
        master
            .send(Header::with_xid(7), &FlexranMessage::VsfPush(push))
            .unwrap();
        master
            .send(
                Header::with_xid(8),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: cqi-gate\n".into(),
                }),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        assert_eq!(agent.mac.dl.active_name(), Some("cqi-gate"));
        assert_eq!(agent.counters().pushes_accepted, 1);
        let acks: Vec<_> = drain(&mut master)
            .into_iter()
            .filter_map(|m| match m {
                FlexranMessage::DelegationAck(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 2);
        assert!(acks.iter().all(|a| a.ok));
    }

    #[test]
    fn tampered_push_rejected() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        let mut push = VsfPush {
            module: "mac".into(),
            vsf: MAC_DL_SCHEDULER.into(),
            name: "evil".into(),
            artifact: VsfArtifact::Registry {
                key: "max-cqi".into(),
            },
            signature: vec![],
        };
        sign_push(&mut push);
        push.artifact = VsfArtifact::Registry {
            key: "round-robin".into(),
        }; // tamper after signing
        master
            .send(Header::with_xid(9), &FlexranMessage::VsfPush(push))
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        assert_eq!(agent.counters().pushes_rejected, 1);
        assert!(!agent.mac.dl.names().contains(&"evil"));
        let acks: Vec<_> = drain(&mut master)
            .into_iter()
            .filter_map(|m| match m {
                FlexranMessage::DelegationAck(a) => Some(a),
                _ => None,
            })
            .collect();
        assert_eq!(acks.len(), 1);
        assert!(!acks[0].ok);
        assert!(acks[0].error.contains("signature"));
    }

    #[test]
    fn bad_policy_is_acked_with_error() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::with_xid(3),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: not-cached\n".into(),
                }),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        assert_eq!(agent.counters().policy_errors, 1);
        // The previous scheduler stays active.
        assert_eq!(agent.mac.dl.active_name(), Some("round-robin"));
        drain(&mut master);
    }

    #[test]
    fn scell_command_over_the_wire() {
        let (a_side, m_side) = channel_pair();
        let mut cfg = EnbConfig::single_cell(EnbId(1));
        cfg.cells
            .push(flexran_types::config::CellConfig::paper_default(CellId(1)));
        let enb = Enb::new(cfg, EnbParams::default()).unwrap();
        let mut agent = FlexranAgent::new(
            enb,
            a_side,
            VsfRegistry::with_builtins(),
            AgentConfig::default(),
        );
        let mut master = m_side;
        let mut phy = StaticPhyView(20.0);
        let rnti = agent
            .enb_mut()
            .rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        master
            .send(
                Header::with_xid(1),
                &FlexranMessage::ScellCommand(flexran_proto::messages::ScellCommand {
                    cell: 0,
                    rnti: rnti.0,
                    scell: 1,
                    activate: true,
                }),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        assert_eq!(
            agent.enb().ue_stat(CELL, rnti).unwrap().active_scells,
            vec![1]
        );
        // Deactivation and an invalid scell.
        master
            .send(
                Header::with_xid(2),
                &FlexranMessage::ScellCommand(flexran_proto::messages::ScellCommand {
                    cell: 0,
                    rnti: rnti.0,
                    scell: 1,
                    activate: false,
                }),
            )
            .unwrap();
        master
            .send(
                Header::with_xid(3),
                &FlexranMessage::ScellCommand(flexran_proto::messages::ScellCommand {
                    cell: 0,
                    rnti: rnti.0,
                    scell: 9,
                    activate: true,
                }),
            )
            .unwrap();
        agent.run_tti(Tti(1), &mut phy);
        assert!(agent
            .enb()
            .ue_stat(CELL, rnti)
            .unwrap()
            .active_scells
            .is_empty());
        assert_eq!(agent.counters().command_errors, 1);
    }

    fn liveness_agent(
        period: u64,
        timeout: u64,
    ) -> (FlexranAgent<ChannelTransport>, ChannelTransport) {
        let (a_side, m_side) = channel_pair();
        let enb = Enb::new(EnbConfig::single_cell(EnbId(1)), EnbParams::default()).unwrap();
        let agent = FlexranAgent::new(
            enb,
            a_side,
            VsfRegistry::with_builtins(),
            AgentConfig {
                liveness: crate::liveness::LivenessConfig {
                    heartbeat_period: period,
                    liveness_timeout: timeout,
                    ..Default::default()
                },
                ..AgentConfig::default()
            },
        );
        (agent, m_side)
    }

    #[test]
    fn heartbeats_flow_and_master_probes_are_acked() {
        let (mut agent, mut master) = liveness_agent(5, 100);
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::default(),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
                    seq: 9,
                    tti: 0,
                    applied_config: 0,
                }),
            )
            .unwrap();
        for t in 0..12 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let msgs = drain(&mut master);
        let probes = msgs
            .iter()
            .filter(|m| matches!(m, FlexranMessage::Heartbeat(_)))
            .count();
        assert_eq!(probes, 3, "t=0,5,10");
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FlexranMessage::HeartbeatAck(a) if a.seq == 9)));
        assert_eq!(agent.liveness_counters().heartbeats_sent, 3);
    }

    #[test]
    fn silent_master_triggers_local_control_failover_and_rejoin() {
        let (mut agent, mut master) = liveness_agent(5, 40);
        let mut phy = StaticPhyView(20.0);
        // The master switches the agent to remote control, then goes dark.
        master
            .send(
                Header::with_xid(1),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: remote-stub\n".into(),
                }),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        assert_eq!(agent.mac.dl.active_name(), Some("remote-stub"));
        assert_eq!(agent.failover_state(), FailoverState::Connected);
        // Silence long enough to blow the timeout.
        for t in 1..=45 {
            agent.run_tti(Tti(t), &mut phy);
        }
        assert_eq!(agent.failover_state(), FailoverState::LocalControl);
        assert_eq!(
            agent.mac.dl.active_name(),
            Some("round-robin"),
            "failover swapped to the cached local policy"
        );
        assert_eq!(agent.liveness_counters().failovers, 1);
        drain(&mut master);
        // The master returns: ack every probe the agent sends.
        let mut rejoined_hello = 0;
        master
            .send(
                Header::default(),
                &FlexranMessage::EchoRequest(flexran_proto::messages::Echo {
                    timestamp_us: 1,
                    payload: vec![],
                }),
            )
            .unwrap();
        for t in 46..=70 {
            agent.run_tti(Tti(t), &mut phy);
            for m in drain(&mut master) {
                match m {
                    FlexranMessage::Heartbeat(h) => {
                        master
                            .send(Header::default(), &FlexranMessage::HeartbeatAck(h))
                            .unwrap();
                    }
                    FlexranMessage::Hello(_) => rejoined_hello += 1,
                    _ => {}
                }
            }
        }
        assert_eq!(agent.failover_state(), FailoverState::Connected);
        assert_eq!(agent.liveness_counters().rejoins, 1);
        assert_eq!(rejoined_hello, 1, "agent re-sent Hello while rejoining");
        assert_eq!(
            agent.mac.dl.active_name(),
            Some("remote-stub"),
            "rejoin restored the pre-failover scheduler, so remote \
             commands are not double-scheduled against the fallback"
        );
    }

    #[test]
    fn rejoin_keeps_replayed_policy_over_stale_restore() {
        let (mut agent, mut master) = liveness_agent(5, 40);
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::with_xid(1),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: remote-stub\n".into(),
                }),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        for t in 1..=45 {
            agent.run_tti(Tti(t), &mut phy);
        }
        assert_eq!(agent.failover_state(), FailoverState::LocalControl);
        drain(&mut master);
        // The master returns and, during the rejoin handshake, replays a
        // *different* policy than the one active before the outage.
        master
            .send(
                Header::with_xid(2),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: proportional-fair\n".into(),
                }),
            )
            .unwrap();
        for t in 46..=70 {
            agent.run_tti(Tti(t), &mut phy);
            for m in drain(&mut master) {
                if let FlexranMessage::Heartbeat(h) = m {
                    master
                        .send(Header::default(), &FlexranMessage::HeartbeatAck(h))
                        .unwrap();
                }
            }
        }
        assert_eq!(agent.failover_state(), FailoverState::Connected);
        assert_eq!(
            agent.mac.dl.active_name(),
            Some("proportional-fair"),
            "a policy replayed during rejoin wins over the stale restore"
        );
    }

    #[test]
    fn resync_request_draws_hello_config_and_full_stats() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        agent
            .enb_mut()
            .rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        for t in 0..80 {
            agent.run_tti(Tti(t), &mut phy);
        }
        drain(&mut master);
        master
            .send(
                Header::default(),
                &FlexranMessage::ResyncRequest(flexran_proto::messages::ResyncRequest {
                    enb_id: EnbId(1),
                    since_tti: 0,
                }),
            )
            .unwrap();
        agent.run_tti(Tti(80), &mut phy);
        let msgs = drain(&mut master);
        let hello = msgs
            .iter()
            .position(|m| matches!(m, FlexranMessage::Hello(_)))
            .expect("re-hello");
        let config = msgs
            .iter()
            .position(|m| matches!(m, FlexranMessage::ConfigReply(c) if !c.ues.is_empty()))
            .expect("config reply with the attached UE");
        let stats = msgs
            .iter()
            .position(|m| matches!(m, FlexranMessage::StatsReply(s) if !s.ues.is_empty()))
            .expect("full stats reply");
        assert!(
            hello < config && config < stats,
            "session re-introduction must precede the state dump"
        );
    }

    #[test]
    fn crash_restart_loses_soft_state_but_keeps_the_data_plane() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        let rnti = agent
            .enb_mut()
            .rach(CELL, UeId(1), SliceId::MNO, 0, Tti(0))
            .unwrap();
        master
            .send(
                Header::with_xid(4),
                &FlexranMessage::StatsRequest(StatsRequest {
                    config: ReportConfig {
                        report_type: ReportType::Periodic { period: 5 },
                        flags: ReportFlags::ALL,
                    },
                }),
            )
            .unwrap();
        master
            .send(
                Header::with_xid(5),
                &FlexranMessage::PolicyReconfiguration(PolicyReconfiguration {
                    yaml: "mac:\n  dl_ue_scheduler:\n    behavior: proportional-fair\n".into(),
                }),
            )
            .unwrap();
        for t in 0..80 {
            agent.run_tti(Tti(t), &mut phy);
        }
        assert_eq!(agent.mac.dl.active_name(), Some("proportional-fair"));
        drain(&mut master);
        agent.crash_restart();
        // Soft state is gone: scheduler back to the configured initial,
        // the periodic subscription no longer fires, counters reset.
        assert_eq!(agent.mac.dl.active_name(), Some("round-robin"));
        assert_eq!(agent.counters(), AgentCounters::default());
        for t in 80..95 {
            agent.run_tti(Tti(t), &mut phy);
        }
        let msgs = drain(&mut master);
        assert!(
            msgs.iter().any(|m| matches!(m, FlexranMessage::Hello(_))),
            "restarted agent re-introduces itself"
        );
        assert!(
            !msgs
                .iter()
                .any(|m| matches!(m, FlexranMessage::StatsReply(_))),
            "crash wiped the report subscription"
        );
        // The data plane survived: the UE is still attached.
        assert!(agent.enb().ue_stat(CELL, rnti).is_ok());
    }

    #[test]
    fn stalled_agent_commits_subframes_but_goes_silent() {
        let (mut agent, mut master) = liveness_agent(5, 100);
        let mut phy = StaticPhyView(20.0);
        agent.run_tti(Tti(0), &mut phy);
        drain(&mut master);
        agent.set_stalled(true);
        // Messages sent to a stalled agent are not consumed…
        master
            .send(
                Header::with_xid(9),
                &FlexranMessage::StatsRequest(StatsRequest {
                    config: ReportConfig {
                        report_type: ReportType::OneOff,
                        flags: ReportFlags::ALL,
                    },
                }),
            )
            .unwrap();
        for t in 1..=20 {
            agent.run_tti(Tti(t), &mut phy);
        }
        assert!(drain(&mut master).is_empty(), "no probes, syncs or replies");
        assert_eq!(agent.counters().rx_messages, 0);
        // …but are processed once the stall clears.
        agent.set_stalled(false);
        agent.run_tti(Tti(21), &mut phy);
        let msgs = drain(&mut master);
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FlexranMessage::StatsReply(_))));
    }

    #[test]
    fn echo_and_config_requests_answered() {
        let (mut agent, mut master) = agent_and_master();
        let mut phy = StaticPhyView(20.0);
        master
            .send(
                Header::with_xid(5),
                &FlexranMessage::EchoRequest(flexran_proto::messages::Echo {
                    timestamp_us: 77,
                    payload: vec![1],
                }),
            )
            .unwrap();
        master
            .send(
                Header::with_xid(6),
                &FlexranMessage::ConfigRequest(flexran_proto::messages::ConfigRequest::default()),
            )
            .unwrap();
        agent.run_tti(Tti(0), &mut phy);
        let msgs = drain(&mut master);
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FlexranMessage::EchoReply(e) if e.timestamp_us == 77)));
        assert!(msgs
            .iter()
            .any(|m| matches!(m, FlexranMessage::ConfigReply(c) if c.cells.len() == 1)));
    }
}
