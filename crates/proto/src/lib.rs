#![forbid(unsafe_code)]
//! # flexran-proto
//!
//! The FlexRAN protocol: the southbound control channel between the master
//! controller and the agents (paper §4.3.2).
//!
//! * [`wire`] — Protocol Buffers wire format, implemented from scratch
//!   (varints, ZigZag, tag/length framing, packed repeated fields), so
//!   serialized message sizes match what the paper's protobuf-based
//!   implementation puts on the wire.
//! * [`messages`] — the message set, organized by the Agent API call
//!   types of paper Table 1 (configuration, statistics, commands,
//!   event triggers, control delegation) plus session management and the
//!   per-TTI subframe sync.
//! * [`frame`] — length-delimited framing for stream transports.
//! * [`transport`] — the async channel abstraction with TCP and
//!   in-process implementations (the virtual-time implementation lives in
//!   `flexran-sim`).
//! * [`category`] — per-category byte accounting (the Fig. 7 series).

pub mod category;
pub mod frame;
pub mod messages;
pub mod transport;
pub mod wire;

pub use category::{ByteCounters, MessageCategory};
pub use messages::{
    AbsCommand, CellReport, ConfigReply, ConfigRequest, DelegationAck, DlSchedulingCommand,
    DrxCommand, EventNotification, FlexranMessage, HandoverCommand, Header, PolicyReconfiguration,
    ReportConfig, ReportFlags, ReportType, ResyncRequest, StatsReply, StatsRequest,
    SubframeTrigger, UeReport, UlSchedulingCommand, VsfArtifact, VsfPush, PROTOCOL_VERSION,
};
pub use transport::{
    channel_pair, BackoffConfig, ChannelTransport, ReconnectingTcpTransport, TcpTransport,
    Transport,
};
