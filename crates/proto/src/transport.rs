//! Transports carrying FlexRAN protocol messages.
//!
//! The paper's implementation runs the protocol over TCP; the agent talks
//! to the master through "an asynchronous interface that abstracts the
//! communication operations" whose implementation "can vary (socket-based,
//! pub/sub etc.)". [`Transport`] is that abstraction. Three
//! implementations exist:
//!
//! * [`TcpTransport`] — real sockets (`std::net`), non-blocking reads,
//!   length-delimited frames. Used by the deployment-mode examples and
//!   integration tests.
//! * [`channel_pair`] — in-process queues (for unit tests and same-process
//!   deployments with no emulated latency).
//! * `flexran-sim`'s virtual-time link — deterministic latency/jitter
//!   emulation for the experiments (defined in that crate against this
//!   trait's message/counter vocabulary).
//!
//! Every transport counts serialized bytes per [`MessageCategory`](crate::category::MessageCategory) in both
//! directions — the raw data of the Fig. 7 signalling-overhead study.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;

use flexran_types::{FlexError, Result};

use crate::category::ByteCounters;
use crate::frame::{encode_frame, FrameDecoder};
use crate::messages::{FlexranMessage, Header};

/// A bidirectional, non-blocking message channel.
pub trait Transport: Send {
    /// Queue a message for the peer.
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()>;

    /// Next message from the peer, if one has arrived.
    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>>;

    /// Bytes sent so far, by category (wire size including framing).
    fn tx_counters(&self) -> ByteCounters;

    /// Bytes received so far, by category.
    fn rx_counters(&self) -> ByteCounters;
}

/// Frame overhead added per message by stream transports.
pub const FRAME_OVERHEAD_BYTES: u64 = 4;

// ----------------------------------------------------------------------
// In-process channel transport
// ----------------------------------------------------------------------

/// One endpoint of an in-process transport pair.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    queue: VecDeque<Vec<u8>>,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
}

/// Create a connected pair of in-process transports.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        ChannelTransport {
            tx: a_tx,
            rx: a_rx,
            queue: VecDeque::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
        ChannelTransport {
            tx: b_tx,
            rx: b_rx,
            queue: VecDeque::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        let bytes = msg.encode(header);
        self.tx_counters
            .add(msg.category(), bytes.len() as u64 + FRAME_OVERHEAD_BYTES);
        self.tx
            .send(bytes.to_vec())
            .map_err(|_| FlexError::Transport("peer endpoint dropped".into()))
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        // Drain the channel into the local queue first so counters stay
        // accurate even if the peer has already hung up.
        while let Ok(m) = self.rx.try_recv() {
            self.queue.push_back(m);
        }
        let Some(bytes) = self.queue.pop_front() else {
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&bytes)?;
        self.rx_counters
            .add(msg.category(), bytes.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }
}

// ----------------------------------------------------------------------
// TCP transport
// ----------------------------------------------------------------------

/// FlexRAN protocol endpoint over a TCP stream.
///
/// Reads are non-blocking (poll with [`Transport::try_recv`] from the
/// owner's loop); writes spin briefly on a full socket buffer, which for
/// the protocol's message sizes (tens of bytes to tens of kilobytes)
/// resolves within microseconds.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
    peer_closed: bool,
}

impl TcpTransport {
    /// Connect to a listening master/agent.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| FlexError::Transport(format!("connect {addr}: {e}")))?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self> {
        stream
            .set_nodelay(true)
            .map_err(|e| FlexError::Transport(format!("set_nodelay: {e}")))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| FlexError::Transport(format!("set_nonblocking: {e}")))?;
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
            peer_closed: false,
        })
    }

    /// Whether the peer has closed its end.
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    fn fill_from_socket(&mut self) -> Result<()> {
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    let (decoder, buf) = (&mut self.decoder, &self.read_buf);
                    decoder.extend(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FlexError::Transport(format!("read: {e}"))),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        let payload = msg.encode(header);
        let frame = encode_frame(&payload)?;
        let mut off = 0usize;
        while off < frame.len() {
            match self.stream.write(&frame[off..]) {
                Ok(0) => return Err(FlexError::Transport("socket closed mid-write".into())),
                Ok(n) => off += n,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::yield_now();
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FlexError::Transport(format!("write: {e}"))),
            }
        }
        self.tx_counters.add(msg.category(), frame.len() as u64);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        self.fill_from_socket()?;
        let Some(frame) = self.decoder.next_frame()? else {
            if self.peer_closed && self.decoder.buffered() == 0 {
                return Err(FlexError::Transport("connection closed by peer".into()));
            }
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&frame)?;
        self.rx_counters
            .add(msg.category(), frame.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::MessageCategory;
    use crate::messages::{Echo, Hello};
    use flexran_types::ids::EnbId;

    fn hello(n: u32) -> FlexranMessage {
        FlexranMessage::Hello(Hello {
            enb_id: EnbId(n),
            n_cells: 1,
            capabilities: vec![],
        })
    }

    #[test]
    fn channel_pair_roundtrip_and_counters() {
        let (mut a, mut b) = channel_pair();
        assert!(b.try_recv().unwrap().is_none());
        a.send(Header::with_xid(5), &hello(1)).unwrap();
        a.send(Header::with_xid(6), &hello(2)).unwrap();
        let (h, m) = b.try_recv().unwrap().unwrap();
        assert_eq!(h.xid, 5);
        assert_eq!(m, hello(1));
        let (h, _) = b.try_recv().unwrap().unwrap();
        assert_eq!(h.xid, 6);
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(
            a.tx_counters().messages(MessageCategory::AgentManagement),
            2
        );
        assert_eq!(
            b.rx_counters().bytes(MessageCategory::AgentManagement),
            a.tx_counters().bytes(MessageCategory::AgentManagement)
        );
    }

    #[test]
    fn channel_detects_dropped_peer() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(a.send(Header::default(), &hello(1)).is_err());
    }

    #[test]
    fn tcp_roundtrip_localhost() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            // Echo whatever arrives, then wait for the big message.
            let mut got = Vec::new();
            while got.len() < 2 {
                if let Some((h, m)) = t.try_recv().unwrap() {
                    t.send(h, &m).unwrap();
                    got.push(m.kind());
                }
                std::thread::yield_now();
            }
            got
        });

        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        c.send(Header::with_xid(1), &hello(42)).unwrap();
        // A larger frame exercising partial reads.
        let big = FlexranMessage::EchoRequest(Echo {
            timestamp_us: 1,
            payload: vec![7u8; 100_000],
        });
        c.send(Header::with_xid(2), &big).unwrap();

        let mut echoed = Vec::new();
        while echoed.len() < 2 {
            if let Some((_, m)) = c.try_recv().unwrap() {
                echoed.push(m);
            }
            std::thread::yield_now();
        }
        assert_eq!(echoed[0], hello(42));
        assert_eq!(echoed[1], big);
        assert_eq!(server.join().unwrap(), vec!["hello", "echo-request"]);
        assert!(c.tx_counters().total_bytes() > 100_000);
    }

    #[test]
    fn tcp_peer_close_is_an_error_after_drain() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            t.send(Header::default(), &hello(9)).unwrap();
            // Drop: closes the socket.
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        t.join().unwrap();
        // First the buffered message arrives...
        let msg = loop {
            if let Some((_, m)) = c.try_recv().unwrap() {
                break m;
            }
            std::thread::yield_now();
        };
        assert_eq!(msg, hello(9));
        // ...then the close surfaces as a transport error.
        let err = loop {
            match c.try_recv() {
                Ok(Some(_)) => panic!("no more messages expected"),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert_eq!(err.category(), "transport");
    }
}
