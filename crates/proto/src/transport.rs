//! Transports carrying FlexRAN protocol messages.
//!
//! The paper's implementation runs the protocol over TCP; the agent talks
//! to the master through "an asynchronous interface that abstracts the
//! communication operations" whose implementation "can vary (socket-based,
//! pub/sub etc.)". [`Transport`] is that abstraction. Three
//! implementations exist:
//!
//! * [`TcpTransport`] — real sockets (`std::net`), non-blocking reads,
//!   length-delimited frames. Used by the deployment-mode examples and
//!   integration tests.
//! * [`ReconnectingTcpTransport`] — wraps [`TcpTransport`] with automatic
//!   redial on connection loss (exponential backoff with deterministic
//!   jitter). A dead connection surfaces as *silence*, not as a transport
//!   error, so the owning agent keeps cycling under local control while
//!   the session heals.
//! * [`channel_pair`] — in-process queues (for unit tests and same-process
//!   deployments with no emulated latency).
//! * `flexran-sim`'s virtual-time link — deterministic latency/jitter
//!   emulation for the experiments (defined in that crate against this
//!   trait's message/counter vocabulary).
//!
//! Every transport counts serialized bytes per [`MessageCategory`](crate::category::MessageCategory) in both
//! directions — the raw data of the Fig. 7 signalling-overhead study.

use std::collections::VecDeque;
use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::mpsc;

use bytes::BytesMut;
use flexran_types::{FlexError, Result};

use crate::category::ByteCounters;
use crate::frame::{encode_frame_into, FrameDecoder};
use crate::messages::{FlexranMessage, Header};
use crate::wire::WireWriter;

/// A bidirectional, non-blocking message channel.
pub trait Transport: Send {
    /// Queue a message for the peer.
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()>;

    /// Next message from the peer, if one has arrived.
    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>>;

    /// Bytes sent so far, by category (wire size including framing).
    fn tx_counters(&self) -> ByteCounters;

    /// Bytes received so far, by category.
    fn rx_counters(&self) -> ByteCounters;

    /// Drop inbound data that has arrived but not yet been delivered via
    /// [`Transport::try_recv`], returning how many messages were lost.
    /// Models a process crash: bytes addressed to a dead process vanish
    /// with its socket. The default is a no-op — real sockets lose their
    /// kernel buffers when the process dies, so only transports that queue
    /// in user space (the sim link) have anything to purge.
    fn purge_inbound(&mut self) -> usize {
        0
    }
}

/// Frame overhead added per message by stream transports.
pub const FRAME_OVERHEAD_BYTES: u64 = 4;

// ----------------------------------------------------------------------
// In-process channel transport
// ----------------------------------------------------------------------

/// One endpoint of an in-process transport pair.
pub struct ChannelTransport {
    tx: mpsc::Sender<Vec<u8>>,
    rx: mpsc::Receiver<Vec<u8>>,
    queue: VecDeque<Vec<u8>>,
    /// Encode scratch, reused across sends.
    scratch: WireWriter,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
}

/// Create a connected pair of in-process transports.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (a_tx, b_rx) = mpsc::channel();
    let (b_tx, a_rx) = mpsc::channel();
    (
        ChannelTransport {
            tx: a_tx,
            rx: a_rx,
            queue: VecDeque::new(),
            scratch: WireWriter::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
        ChannelTransport {
            tx: b_tx,
            rx: b_rx,
            queue: VecDeque::new(),
            scratch: WireWriter::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
    )
}

impl Transport for ChannelTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        msg.encode_into(header, &mut self.scratch);
        self.tx_counters.add(
            msg.category(),
            self.scratch.len() as u64 + FRAME_OVERHEAD_BYTES,
        );
        self.tx
            .send(self.scratch.as_slice().to_vec())
            .map_err(|_| FlexError::Transport("peer endpoint dropped".into()))
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        // Drain the channel into the local queue first so counters stay
        // accurate even if the peer has already hung up.
        while let Ok(m) = self.rx.try_recv() {
            self.queue.push_back(m);
        }
        let Some(bytes) = self.queue.pop_front() else {
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&bytes)?;
        self.rx_counters
            .add(msg.category(), bytes.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }
}

// ----------------------------------------------------------------------
// TCP transport
// ----------------------------------------------------------------------

/// FlexRAN protocol endpoint over a TCP stream.
///
/// Reads are non-blocking (poll with [`Transport::try_recv`] from the
/// owner's loop); writes spin briefly on a full socket buffer (which for
/// the protocol's message sizes resolves within microseconds), then fall
/// back to a parked wait with a bounded, escalating timeout.
pub struct TcpTransport {
    stream: TcpStream,
    decoder: FrameDecoder,
    read_buf: Vec<u8>,
    /// Encode scratch, reused across sends.
    scratch: WireWriter,
    /// Framed-bytes scratch, reused across sends.
    frame_buf: BytesMut,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
    peer_closed: bool,
}

impl TcpTransport {
    /// Connect to a listening master/agent.
    pub fn connect(addr: &str) -> Result<Self> {
        let stream = TcpStream::connect(addr)
            .map_err(|e| FlexError::Transport(format!("connect {addr}: {e}")))?;
        Self::from_stream(stream)
    }

    /// Wrap an accepted stream.
    pub fn from_stream(stream: TcpStream) -> Result<Self> {
        stream
            .set_nodelay(true)
            .map_err(|e| FlexError::Transport(format!("set_nodelay: {e}")))?;
        stream
            .set_nonblocking(true)
            .map_err(|e| FlexError::Transport(format!("set_nonblocking: {e}")))?;
        Ok(TcpTransport {
            stream,
            decoder: FrameDecoder::new(),
            read_buf: vec![0u8; 64 * 1024],
            scratch: WireWriter::new(),
            frame_buf: BytesMut::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
            peer_closed: false,
        })
    }

    /// Whether the peer has closed its end.
    pub fn peer_closed(&self) -> bool {
        self.peer_closed
    }

    fn fill_from_socket(&mut self) -> Result<()> {
        loop {
            match self.stream.read(&mut self.read_buf) {
                Ok(0) => {
                    self.peer_closed = true;
                    return Ok(());
                }
                Ok(n) => {
                    let (decoder, buf) = (&mut self.decoder, &self.read_buf);
                    // lint:allow(panic) — `n <= buf.len()` per the Read contract.
                    decoder.extend(&buf[..n]);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => return Ok(()),
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => return Err(FlexError::Transport(format!("read: {e}"))),
            }
        }
    }
}

impl Transport for TcpTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        msg.encode_into(header, &mut self.scratch);
        encode_frame_into(self.scratch.as_slice(), &mut self.frame_buf)?;
        let mut off = 0usize;
        let mut stalls = 0u64;
        while off < self.frame_buf.len() {
            // lint:allow(panic) — `off < len` is the loop condition.
            match self.stream.write(&self.frame_buf[off..]) {
                Ok(0) => return Err(FlexError::Transport("socket closed mid-write".into())),
                Ok(n) => {
                    off += n;
                    stalls = 0;
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    // A full socket buffer normally drains within
                    // microseconds, so spin briefly; past that, park
                    // with an escalating (bounded) timeout so a stalled
                    // peer doesn't cost a busy core. A spurious unpark
                    // just retries the write.
                    stalls += 1;
                    if stalls <= 64 {
                        std::thread::yield_now();
                    } else {
                        let wait = std::time::Duration::from_micros(stalls.min(1_000));
                        std::thread::park_timeout(wait);
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
                Err(e) => return Err(FlexError::Transport(format!("write: {e}"))),
            }
        }
        self.tx_counters
            .add(msg.category(), self.frame_buf.len() as u64);
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        self.fill_from_socket()?;
        let Some(frame) = self.decoder.next_frame()? else {
            // Once the peer has closed, no further bytes can ever arrive,
            // so surface an error whether the decoder is empty or holds a
            // truncated frame — returning `Ok(None)` with leftover bytes
            // would make the owner poll silence forever.
            if self.peer_closed {
                let truncated = self.decoder.buffered();
                return Err(FlexError::Transport(if truncated == 0 {
                    "connection closed by peer".into()
                } else {
                    format!("connection closed by peer mid-frame ({truncated} bytes truncated)")
                }));
            }
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&frame)?;
        self.rx_counters
            .add(msg.category(), frame.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }
}

// ----------------------------------------------------------------------
// Reconnecting TCP transport
// ----------------------------------------------------------------------

/// Reconnect backoff schedule: exponential growth from `initial_ms` to
/// `max_ms`, with a deterministic ±`jitter_frac` spread so a fleet of
/// agents redialling a restarted master does not stampede in lockstep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BackoffConfig {
    /// Delay before the first redial attempt (milliseconds).
    pub initial_ms: u64,
    /// Ceiling on the delay between attempts (milliseconds).
    pub max_ms: u64,
    /// Growth factor applied after each failed attempt.
    pub multiplier: f64,
    /// Jitter as a fraction of the delay (0.2 → delay × [0.8, 1.2)).
    pub jitter_frac: f64,
    /// Seed for the jitter stream — same seed, same schedule.
    pub seed: u64,
}

impl Default for BackoffConfig {
    fn default() -> Self {
        BackoffConfig {
            initial_ms: 50,
            max_ms: 5_000,
            multiplier: 2.0,
            jitter_frac: 0.2,
            seed: 1,
        }
    }
}

/// A [`TcpTransport`] that redials on connection loss.
///
/// Any socket-level failure (refused connect, peer close, reset) drops
/// the current connection, folds its byte counters into the lifetime
/// totals, and schedules a reconnect per [`BackoffConfig`]. While
/// disconnected, [`Transport::try_recv`] returns `Ok(None)` and
/// [`Transport::send`] returns a transport error — the caller's liveness
/// machinery (not the transport) decides what the outage means.
pub struct ReconnectingTcpTransport {
    addr: String,
    backoff: BackoffConfig,
    inner: Option<TcpTransport>,
    /// Counters from connections that have already died.
    closed_tx: ByteCounters,
    closed_rx: ByteCounters,
    delay_ms: u64,
    next_attempt: std::time::Instant,
    reconnects: u64,
    ever_connected: bool,
    rng: u64,
}

impl ReconnectingTcpTransport {
    /// Create the endpoint and attempt an immediate first connect. A
    /// refused first dial is not an error — the transport starts in the
    /// disconnected state and retries on the backoff schedule.
    pub fn connect(addr: impl Into<String>, backoff: BackoffConfig) -> Self {
        let mut t = ReconnectingTcpTransport {
            addr: addr.into(),
            backoff,
            inner: None,
            closed_tx: ByteCounters::new(),
            closed_rx: ByteCounters::new(),
            delay_ms: backoff.initial_ms,
            // Redial pacing is real-time by nature; deterministic runs
            // use the sim-link transport instead of this one.
            // lint:allow(wall-clock)
            next_attempt: std::time::Instant::now(),
            reconnects: 0,
            ever_connected: false,
            rng: backoff.seed.max(1),
        };
        t.try_reconnect();
        t
    }

    /// Whether a live connection currently exists.
    pub fn is_connected(&self) -> bool {
        self.inner.is_some()
    }

    /// Successful redials after the initial connect.
    pub fn reconnects(&self) -> u64 {
        self.reconnects
    }

    /// The delay the next failed attempt would schedule (milliseconds).
    pub fn current_backoff_ms(&self) -> u64 {
        self.delay_ms
    }

    fn next_jitter(&mut self) -> f64 {
        // xorshift64 — proto carries no RNG dependency, and the jitter
        // stream must be reproducible from the seed.
        let mut x = self.rng;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.rng = x;
        (x >> 11) as f64 / (1u64 << 53) as f64
    }

    fn drop_connection(&mut self) {
        if let Some(inner) = self.inner.take() {
            self.closed_tx.merge(&inner.tx_counters());
            self.closed_rx.merge(&inner.rx_counters());
        }
        self.schedule_retry();
    }

    fn schedule_retry(&mut self) {
        let jitter = 1.0 + self.backoff.jitter_frac * (2.0 * self.next_jitter() - 1.0);
        let wait_ms = (self.delay_ms as f64 * jitter).max(0.0) as u64;
        // lint:allow(wall-clock) — backoff windows are real-time spans.
        self.next_attempt = std::time::Instant::now() + std::time::Duration::from_millis(wait_ms);
        self.delay_ms = ((self.delay_ms as f64 * self.backoff.multiplier) as u64)
            .clamp(self.backoff.initial_ms.max(1), self.backoff.max_ms.max(1));
    }

    /// Attempt a redial if disconnected and the backoff window has
    /// elapsed. Returns whether a connection now exists.
    fn try_reconnect(&mut self) -> bool {
        if self.inner.is_some() {
            return true;
        }
        // lint:allow(wall-clock) — compares against the real-time window.
        if std::time::Instant::now() < self.next_attempt {
            return false;
        }
        match TcpTransport::connect(&self.addr) {
            Ok(t) => {
                self.inner = Some(t);
                self.delay_ms = self.backoff.initial_ms;
                if self.ever_connected {
                    self.reconnects += 1;
                }
                self.ever_connected = true;
                true
            }
            Err(_) => {
                self.schedule_retry();
                false
            }
        }
    }
}

impl Transport for ReconnectingTcpTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        // `try_reconnect() == true` guarantees `inner` is populated, but
        // propagate the disconnected error rather than panic regardless.
        let Some(inner) = (if self.try_reconnect() {
            self.inner.as_mut()
        } else {
            None
        }) else {
            return Err(FlexError::Transport(format!(
                "disconnected from {} (redialling)",
                self.addr
            )));
        };
        match inner.send(header, msg) {
            Ok(()) => Ok(()),
            Err(e) => {
                self.drop_connection();
                Err(e)
            }
        }
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        if !self.try_reconnect() {
            return Ok(None);
        }
        let Some(inner) = self.inner.as_mut() else {
            return Ok(None);
        };
        match inner.try_recv() {
            Ok(m) => Ok(m),
            Err(_) => {
                // Peer close / reset: become silent and redial, rather
                // than surfacing a fatal error to the polling loop.
                self.drop_connection();
                Ok(None)
            }
        }
    }

    fn tx_counters(&self) -> ByteCounters {
        let mut total = self.closed_tx;
        if let Some(inner) = &self.inner {
            total.merge(&inner.tx_counters());
        }
        total
    }

    fn rx_counters(&self) -> ByteCounters {
        let mut total = self.closed_rx;
        if let Some(inner) = &self.inner {
            total.merge(&inner.rx_counters());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::category::MessageCategory;
    use crate::messages::{Echo, Hello};
    use flexran_types::ids::EnbId;

    fn hello(n: u32) -> FlexranMessage {
        FlexranMessage::Hello(Hello {
            enb_id: EnbId(n),
            n_cells: 1,
            capabilities: vec![],
            applied_config: 0,
        })
    }

    #[test]
    fn channel_pair_roundtrip_and_counters() {
        let (mut a, mut b) = channel_pair();
        assert!(b.try_recv().unwrap().is_none());
        a.send(Header::with_xid(5), &hello(1)).unwrap();
        a.send(Header::with_xid(6), &hello(2)).unwrap();
        let (h, m) = b.try_recv().unwrap().unwrap();
        assert_eq!(h.xid, 5);
        assert_eq!(m, hello(1));
        let (h, _) = b.try_recv().unwrap().unwrap();
        assert_eq!(h.xid, 6);
        assert!(b.try_recv().unwrap().is_none());
        assert_eq!(
            a.tx_counters().messages(MessageCategory::AgentManagement),
            2
        );
        assert_eq!(
            b.rx_counters().bytes(MessageCategory::AgentManagement),
            a.tx_counters().bytes(MessageCategory::AgentManagement)
        );
    }

    #[test]
    fn channel_detects_dropped_peer() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(a.send(Header::default(), &hello(1)).is_err());
    }

    #[test]
    fn tcp_roundtrip_localhost() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let server = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            // Echo whatever arrives, then wait for the big message.
            let mut got = Vec::new();
            while got.len() < 2 {
                if let Some((h, m)) = t.try_recv().unwrap() {
                    t.send(h, &m).unwrap();
                    got.push(m.kind());
                }
                std::thread::yield_now();
            }
            got
        });

        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        c.send(Header::with_xid(1), &hello(42)).unwrap();
        // A larger frame exercising partial reads.
        let big = FlexranMessage::EchoRequest(Echo {
            timestamp_us: 1,
            payload: vec![7u8; 100_000],
        });
        c.send(Header::with_xid(2), &big).unwrap();

        let mut echoed = Vec::new();
        while echoed.len() < 2 {
            if let Some((_, m)) = c.try_recv().unwrap() {
                echoed.push(m);
            }
            std::thread::yield_now();
        }
        assert_eq!(echoed[0], hello(42));
        assert_eq!(echoed[1], big);
        assert_eq!(server.join().unwrap(), vec!["hello", "echo-request"]);
        assert!(c.tx_counters().total_bytes() > 100_000);
    }

    fn fast_backoff() -> BackoffConfig {
        BackoffConfig {
            initial_ms: 1,
            max_ms: 10,
            multiplier: 2.0,
            jitter_frac: 0.2,
            seed: 7,
        }
    }

    #[test]
    fn reconnecting_transport_survives_master_restart() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();

        let mut c = ReconnectingTcpTransport::connect(addr.to_string(), fast_backoff());
        assert!(c.is_connected());
        assert_eq!(c.reconnects(), 0);

        // First master incarnation: echo one message, then die.
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::from_stream(stream).unwrap();
        c.send(Header::with_xid(1), &hello(1)).unwrap();
        loop {
            if let Some((h, m)) = server.try_recv().unwrap() {
                server.send(h, &m).unwrap();
                break;
            }
            std::thread::yield_now();
        }
        let echoed = loop {
            if let Some((_, m)) = c.try_recv().unwrap() {
                break m;
            }
            std::thread::yield_now();
        };
        assert_eq!(echoed, hello(1));
        let bytes_before_crash = c.tx_counters().total_bytes();
        drop(server);
        drop(listener);

        // The outage is silence, not an error; sends fail softly.
        let dead = std::time::Instant::now();
        while c.is_connected() {
            assert!(c.try_recv().unwrap().is_none());
            assert!(dead.elapsed() < std::time::Duration::from_secs(5));
        }
        assert!(c.send(Header::default(), &hello(2)).is_err());

        // Master restarts on the same port (retry the bind: the OS may
        // not release it instantly).
        let listener = loop {
            match std::net::TcpListener::bind(addr) {
                Ok(l) => break l,
                Err(_) => std::thread::sleep(std::time::Duration::from_millis(5)),
            }
        };
        let redialled = std::time::Instant::now();
        loop {
            let _ = c.try_recv().unwrap(); // drives the redial
            if c.is_connected() {
                break;
            }
            assert!(
                redialled.elapsed() < std::time::Duration::from_secs(10),
                "redial never succeeded"
            );
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
        assert_eq!(c.reconnects(), 1);
        let (stream, _) = listener.accept().unwrap();
        let mut server = TcpTransport::from_stream(stream).unwrap();

        // Traffic flows again and lifetime counters span both epochs.
        c.send(Header::with_xid(2), &hello(3)).unwrap();
        let got = loop {
            if let Some((_, m)) = server.try_recv().unwrap() {
                break m;
            }
            std::thread::yield_now();
        };
        assert_eq!(got, hello(3));
        assert!(c.tx_counters().total_bytes() > bytes_before_crash);
        assert_eq!(
            c.tx_counters().messages(MessageCategory::AgentManagement),
            2,
            "counters accumulate across connection epochs"
        );
    }

    #[test]
    fn backoff_schedule_grows_and_caps() {
        // Nothing listens on a reserved-then-closed port: every dial fails.
        let addr = {
            let l = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
            l.local_addr().unwrap()
        };
        let mut c = ReconnectingTcpTransport::connect(
            addr.to_string(),
            BackoffConfig {
                initial_ms: 4,
                max_ms: 32,
                multiplier: 2.0,
                jitter_frac: 0.0,
                seed: 1,
            },
        );
        assert!(!c.is_connected());
        // The failed initial dial already doubled the delay once.
        let mut seen = vec![c.current_backoff_ms()];
        for _ in 0..5 {
            // Force the next attempt immediately regardless of wall clock.
            c.next_attempt = std::time::Instant::now();
            let _ = c.try_recv().unwrap();
            seen.push(c.current_backoff_ms());
        }
        assert_eq!(seen, vec![8, 16, 32, 32, 32, 32], "doubles then caps");
    }

    #[test]
    fn jitter_stream_is_deterministic() {
        let mk = || ReconnectingTcpTransport {
            addr: "127.0.0.1:1".into(),
            backoff: BackoffConfig::default(),
            inner: None,
            closed_tx: ByteCounters::new(),
            closed_rx: ByteCounters::new(),
            delay_ms: 50,
            next_attempt: std::time::Instant::now(),
            reconnects: 0,
            ever_connected: false,
            rng: 42,
        };
        let (mut a, mut b) = (mk(), mk());
        for _ in 0..100 {
            let (ja, jb) = (a.next_jitter(), b.next_jitter());
            assert_eq!(ja, jb);
            assert!((0.0..1.0).contains(&ja));
        }
    }

    #[test]
    fn tcp_peer_close_is_an_error_after_drain() {
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (stream, _) = listener.accept().unwrap();
            let mut t = TcpTransport::from_stream(stream).unwrap();
            t.send(Header::default(), &hello(9)).unwrap();
            // Drop: closes the socket.
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        t.join().unwrap();
        // First the buffered message arrives...
        let msg = loop {
            if let Some((_, m)) = c.try_recv().unwrap() {
                break m;
            }
            std::thread::yield_now();
        };
        assert_eq!(msg, hello(9));
        // ...then the close surfaces as a transport error.
        let err = loop {
            match c.try_recv() {
                Ok(Some(_)) => panic!("no more messages expected"),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert_eq!(err.category(), "transport");
    }

    #[test]
    fn tcp_peer_close_mid_frame_is_an_error() {
        // Regression: a peer dying after delivering only part of a frame
        // used to leave `try_recv` returning `Ok(None)` forever — the
        // decoder held the truncated bytes, `buffered() != 0` suppressed
        // the close error, and the owner polled silence for eternity.
        use std::io::Write as _;
        let listener = std::net::TcpListener::bind("127.0.0.1:0").unwrap();
        let addr = listener.local_addr().unwrap();
        let t = std::thread::spawn(move || {
            let (mut stream, _) = listener.accept().unwrap();
            // Announce an 8-byte frame, deliver 3 payload bytes, die.
            stream.write_all(&8u32.to_be_bytes()).unwrap();
            stream.write_all(&[1, 2, 3]).unwrap();
        });
        let mut c = TcpTransport::connect(&addr.to_string()).unwrap();
        t.join().unwrap();
        let err = loop {
            match c.try_recv() {
                Ok(Some(_)) => panic!("truncated frame must not decode"),
                Ok(None) => std::thread::yield_now(),
                Err(e) => break e,
            }
        };
        assert_eq!(err.category(), "transport");
        assert!(
            err.to_string().contains("truncated"),
            "error should say bytes were truncated: {err}"
        );
    }
}
