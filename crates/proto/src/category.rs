//! Message categories and byte accounting.
//!
//! The signalling-overhead evaluation (paper Fig. 7) breaks the
//! master↔agent traffic down into *agent management*, *master-agent sync*
//! and *stats reporting* in one direction, and *agent management* and
//! *master commands* in the other. Every [`crate::FlexranMessage`] maps to
//! one of these categories, and transports count serialized bytes per
//! category so the experiment can print exactly the paper's series.

use std::fmt;

/// Traffic category of a FlexRAN protocol message.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MessageCategory {
    /// Session liveness, configuration exchange, report subscriptions.
    AgentManagement,
    /// Per-TTI subframe synchronization (agent → master).
    Sync,
    /// Statistics reports (agent → master).
    StatsReporting,
    /// Control commands (master → agent): scheduling decisions, handover,
    /// DRX, ABS patterns.
    Commands,
    /// Control delegation: VSF pushes and policy reconfigurations.
    Delegation,
    /// Asynchronous event notifications (agent → master).
    Events,
    /// Session liveness probes: heartbeats and echo RTT measurements.
    Liveness,
    /// Fleet configuration rollout: versioned bundle pushes and their
    /// signed acks.
    Config,
}

impl MessageCategory {
    pub const ALL: [MessageCategory; 8] = [
        MessageCategory::AgentManagement,
        MessageCategory::Sync,
        MessageCategory::StatsReporting,
        MessageCategory::Commands,
        MessageCategory::Delegation,
        MessageCategory::Events,
        MessageCategory::Liveness,
        MessageCategory::Config,
    ];

    /// Whether messages of this category may be shed when a bounded
    /// transport queue overflows. Periodic stats reports are the only
    /// sheddable traffic: the next report supersedes a dropped one.
    /// Liveness, commands, delegation, events and session management must
    /// never be dropped by the shedder — losing them changes control-plane
    /// state (missed failover edges, lost scheduling decisions).
    pub fn sheddable(self) -> bool {
        matches!(self, MessageCategory::StatsReporting)
    }

    pub fn index(self) -> usize {
        match self {
            MessageCategory::AgentManagement => 0,
            MessageCategory::Sync => 1,
            MessageCategory::StatsReporting => 2,
            MessageCategory::Commands => 3,
            MessageCategory::Delegation => 4,
            MessageCategory::Events => 5,
            MessageCategory::Liveness => 6,
            MessageCategory::Config => 7,
        }
    }
}

impl fmt::Display for MessageCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            MessageCategory::AgentManagement => "agent-management",
            MessageCategory::Sync => "master-agent-sync",
            MessageCategory::StatsReporting => "stats-reporting",
            MessageCategory::Commands => "master-commands",
            MessageCategory::Delegation => "control-delegation",
            MessageCategory::Events => "event-notifications",
            MessageCategory::Liveness => "liveness",
            MessageCategory::Config => "config-rollout",
        };
        f.write_str(s)
    }
}

/// Per-category byte and message counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ByteCounters {
    bytes: [u64; 8],
    messages: [u64; 8],
}

impl ByteCounters {
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one serialized message of `bytes` (wire size incl. framing).
    pub fn add(&mut self, cat: MessageCategory, bytes: u64) {
        let i = cat.index();
        // lint:allow(panic) — `index()` < 8, proven by the bijection test.
        self.bytes[i] += bytes;
        // lint:allow(panic) — as above.
        self.messages[i] += 1;
    }

    pub fn bytes(&self, cat: MessageCategory) -> u64 {
        // lint:allow(panic) — `index()` < 8, proven by the bijection test.
        self.bytes[cat.index()]
    }

    pub fn messages(&self, cat: MessageCategory) -> u64 {
        // lint:allow(panic) — `index()` < 8, proven by the bijection test.
        self.messages[cat.index()]
    }

    pub fn total_bytes(&self) -> u64 {
        self.bytes.iter().sum()
    }

    /// Average rate over a window, in Mb/s.
    pub fn mbps(&self, cat: MessageCategory, window_ms: u64) -> f64 {
        if window_ms == 0 {
            return 0.0;
        }
        self.bytes(cat) as f64 * 8.0 / window_ms as f64 / 1000.0
    }

    /// Fold another counter set into this one. Used by reconnecting
    /// transports to carry Fig. 7 accounting across connection epochs.
    pub fn merge(&mut self, other: &ByteCounters) {
        for (b, o) in self.bytes.iter_mut().zip(other.bytes) {
            *b += o;
        }
        for (m, o) in self.messages.iter_mut().zip(other.messages) {
            *m += o;
        }
    }

    /// Counters accumulated since `earlier` (for windowed measurements).
    pub fn since(&self, earlier: &ByteCounters) -> ByteCounters {
        let mut out = ByteCounters::default();
        for ((o, s), e) in out.bytes.iter_mut().zip(self.bytes).zip(earlier.bytes) {
            *o = s - e;
        }
        for ((o, s), e) in out
            .messages
            .iter_mut()
            .zip(self.messages)
            .zip(earlier.messages)
        {
            *o = s - e;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accounting_accumulates_per_category() {
        let mut c = ByteCounters::new();
        c.add(MessageCategory::Sync, 20);
        c.add(MessageCategory::Sync, 22);
        c.add(MessageCategory::Commands, 100);
        assert_eq!(c.bytes(MessageCategory::Sync), 42);
        assert_eq!(c.messages(MessageCategory::Sync), 2);
        assert_eq!(c.total_bytes(), 142);
    }

    #[test]
    fn mbps_math() {
        let mut c = ByteCounters::new();
        // 12_500 bytes over 1 ms = 100 Mb/s.
        c.add(MessageCategory::StatsReporting, 12_500);
        assert!((c.mbps(MessageCategory::StatsReporting, 1) - 100.0).abs() < 1e-9);
        assert_eq!(c.mbps(MessageCategory::StatsReporting, 0), 0.0);
    }

    #[test]
    fn merge_accumulates_across_epochs() {
        let mut total = ByteCounters::new();
        total.add(MessageCategory::Liveness, 30);
        let mut epoch = ByteCounters::new();
        epoch.add(MessageCategory::Liveness, 12);
        epoch.add(MessageCategory::Sync, 20);
        total.merge(&epoch);
        assert_eq!(total.bytes(MessageCategory::Liveness), 42);
        assert_eq!(total.messages(MessageCategory::Liveness), 2);
        assert_eq!(total.bytes(MessageCategory::Sync), 20);
    }

    #[test]
    fn windowed_difference() {
        let mut c = ByteCounters::new();
        c.add(MessageCategory::Events, 10);
        let snapshot = c;
        c.add(MessageCategory::Events, 5);
        let d = c.since(&snapshot);
        assert_eq!(d.bytes(MessageCategory::Events), 5);
        assert_eq!(d.messages(MessageCategory::Events), 1);
    }

    #[test]
    fn indices_are_bijective() {
        let mut seen = std::collections::HashSet::new();
        for cat in MessageCategory::ALL {
            assert!(seen.insert(cat.index()));
            assert!(cat.index() < 8);
        }
    }
}
