//! Configuration messages (the *Configuration* call type of the Agent
//! API): get/set configurations of eNodeB, cells and UEs.

use flexran_types::config::{Bandwidth, CellConfig, DuplexMode, TransmissionMode, UeConfig};
use flexran_types::ids::{CellId, EnbId, Rnti, SliceId};
use flexran_types::units::Dbm;
use flexran_types::Result;

use crate::wire::{WireReader, WireWriter};

/// What configuration the master asks for.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConfigScope {
    #[default]
    Enb,
    Cell,
    Ue,
}

/// Configuration request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ConfigRequest {
    pub scope: ConfigScope,
    /// Restrict to one cell (for `Cell`/`Ue` scopes); `None` = all.
    pub cell: Option<CellId>,
}

impl ConfigRequest {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(
            1,
            match self.scope {
                ConfigScope::Enb => 0,
                ConfigScope::Cell => 1,
                ConfigScope::Ue => 2,
            },
        );
        if let Some(c) = self.cell {
            // +1 so cell 0 survives default-skipping.
            w.uint(2, c.0 as u64 + 1);
        }
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ConfigRequest> {
        let mut m = ConfigRequest::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => {
                    m.scope = match v.as_u64()? {
                        1 => ConfigScope::Cell,
                        2 => ConfigScope::Ue,
                        _ => ConfigScope::Enb,
                    }
                }
                2 => m.cell = Some(CellId((v.as_u64()? - 1) as u16)),
                _ => {}
            }
        }
        Ok(m)
    }
}

/// On-wire cell configuration. All-scalar, so `Copy`: the RIB updater
/// folds these by value without touching the heap.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CellConfigPb {
    pub cell_id: u16,
    pub band: u16,
    pub fdd: bool,
    pub dl_prbs: u8,
    pub ul_prbs: u8,
    pub antenna_ports: u8,
    pub pdcch_symbols: u8,
    /// Transmit power in centi-dBm (signed).
    pub tx_power_cdbm: i64,
    pub max_dl_dcis: u8,
    pub max_ul_grants: u8,
}

impl CellConfigPb {
    pub fn from_config(c: &CellConfig) -> Self {
        CellConfigPb {
            cell_id: c.cell_id.0,
            band: c.band,
            fdd: c.duplex == DuplexMode::Fdd,
            dl_prbs: c.dl_bandwidth.n_prb(),
            ul_prbs: c.ul_bandwidth.n_prb(),
            antenna_ports: c.n_antenna_ports,
            pdcch_symbols: c.pdcch_symbols,
            tx_power_cdbm: (c.tx_power.0 * 100.0).round() as i64,
            max_dl_dcis: c.max_dl_dcis_per_tti,
            max_ul_grants: c.max_ul_grants_per_tti,
        }
    }

    pub fn to_config(&self) -> Result<CellConfig> {
        let cfg = CellConfig {
            cell_id: CellId(self.cell_id),
            band: self.band,
            duplex: if self.fdd {
                DuplexMode::Fdd
            } else {
                DuplexMode::Tdd
            },
            dl_bandwidth: Bandwidth::from_n_prb(self.dl_prbs)?,
            ul_bandwidth: Bandwidth::from_n_prb(self.ul_prbs)?,
            n_antenna_ports: self.antenna_ports,
            tx_power: Dbm(self.tx_power_cdbm as f64 / 100.0),
            pdcch_symbols: self.pdcch_symbols,
            max_dl_dcis_per_tti: self.max_dl_dcis,
            max_ul_grants_per_tti: self.max_ul_grants,
        };
        cfg.validate()?;
        Ok(cfg)
    }

    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell_id as u64 + 1);
        w.uint(2, self.band as u64);
        w.uint(3, self.fdd as u64);
        w.uint(4, self.dl_prbs as u64);
        w.uint(5, self.ul_prbs as u64);
        w.uint(6, self.antenna_ports as u64);
        w.uint(7, self.pdcch_symbols as u64);
        w.sint(8, self.tx_power_cdbm);
        w.uint(9, self.max_dl_dcis as u64);
        w.uint(10, self.max_ul_grants as u64);
    }

    fn decode(data: &[u8]) -> Result<CellConfigPb> {
        let mut m = CellConfigPb {
            cell_id: 0,
            band: 0,
            fdd: false,
            dl_prbs: 0,
            ul_prbs: 0,
            antenna_ports: 0,
            pdcch_symbols: 0,
            tx_power_cdbm: 0,
            max_dl_dcis: 0,
            max_ul_grants: 0,
        };
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell_id = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.band = v.as_u64()? as u16,
                3 => m.fdd = v.as_u64()? != 0,
                4 => m.dl_prbs = v.as_u64()? as u8,
                5 => m.ul_prbs = v.as_u64()? as u8,
                6 => m.antenna_ports = v.as_u64()? as u8,
                7 => m.pdcch_symbols = v.as_u64()? as u8,
                8 => m.tx_power_cdbm = v.as_i64_zigzag()?,
                9 => m.max_dl_dcis = v.as_u64()? as u8,
                10 => m.max_ul_grants = v.as_u64()? as u8,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// On-wire UE configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct UeConfigPb {
    pub rnti: u16,
    pub pcell: u16,
    pub transmission_mode: u8,
    pub slice: u8,
    pub ue_category: u8,
}

impl UeConfigPb {
    pub fn from_config(c: &UeConfig) -> Self {
        UeConfigPb {
            rnti: c.rnti.0,
            pcell: c.pcell.0,
            transmission_mode: c.transmission_mode.0,
            slice: c.slice.0,
            ue_category: c.ue_category,
        }
    }

    pub fn to_config(&self) -> Result<UeConfig> {
        Ok(UeConfig {
            rnti: Rnti(self.rnti),
            pcell: CellId(self.pcell),
            transmission_mode: TransmissionMode::new(self.transmission_mode.max(1))?,
            slice: SliceId(self.slice),
            ue_category: self.ue_category,
            ambr_dl: None,
        })
    }

    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.rnti as u64);
        w.uint(2, self.pcell as u64 + 1);
        w.uint(3, self.transmission_mode as u64);
        w.uint(4, self.slice as u64);
        w.uint(5, self.ue_category as u64);
    }

    fn decode(data: &[u8]) -> Result<UeConfigPb> {
        let mut m = UeConfigPb {
            rnti: 0,
            pcell: 0,
            transmission_mode: 1,
            slice: 0,
            ue_category: 4,
        };
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.rnti = v.as_u64()? as u16,
                2 => m.pcell = (v.as_u64()?.saturating_sub(1)) as u16,
                3 => m.transmission_mode = v.as_u64()? as u8,
                4 => m.slice = v.as_u64()? as u8,
                5 => m.ue_category = v.as_u64()? as u8,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Configuration reply: the eNodeB's cells and attached UEs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ConfigReply {
    pub enb_id: EnbId,
    pub cells: Vec<CellConfigPb>,
    pub ues: Vec<UeConfigPb>,
}

impl ConfigReply {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        for c in &self.cells {
            w.message(2, |m| c.encode(m));
        }
        for u in &self.ues {
            w.message(3, |m| u.encode(m));
        }
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ConfigReply> {
        let mut m = ConfigReply::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.cells.push(CellConfigPb::decode(v.as_bytes()?)?),
                3 => m.ues.push(UeConfigPb::decode(v.as_bytes()?)?),
                _ => {}
            }
        }
        Ok(m)
    }
}

/// A versioned fleet configuration bundle: everything one agent needs to
/// run a given control-plane configuration — the policy document, the VSF
/// to select, and the scheduler behaviour to activate — signed by the
/// master so agents can verify provenance before applying (§4.3.1's
/// code-signing requirement extended to whole configurations).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigBundlePb {
    /// Monotonic fleet-wide version issued by the rollout controller.
    pub version: u64,
    /// Policy reconfiguration document (the Fig. 3 YAML subset).
    pub policy_yaml: String,
    /// VSF registry key to (re)install before activating, empty = none.
    pub vsf_key: String,
    /// DL scheduler behaviour to activate, empty = keep current.
    pub scheduler: String,
    /// Keyed FNV-1a over (version, policy, vsf, scheduler).
    pub signature: u64,
}

impl ConfigBundlePb {
    /// Build a bundle and sign it (the master is the signing authority;
    /// the shared-constant key is the model's stand-in for PKI, matching
    /// the VSF push signing scheme).
    pub fn signed(version: u64, policy_yaml: String, vsf_key: String, scheduler: String) -> Self {
        let mut b = ConfigBundlePb {
            version,
            policy_yaml,
            vsf_key,
            scheduler,
            signature: 0,
        };
        b.signature = b.compute_signature();
        b
    }

    /// The keyed FNV-1a signature over (version, policy, vsf, scheduler).
    pub fn compute_signature(&self) -> u64 {
        const SIGNING_KEY: u64 = 0x46_4C_45_58_52_41_4E_21;
        let mut h = SIGNING_KEY ^ 0xcbf29ce484222325;
        let mut feed = |data: &[u8]| {
            for b in data {
                h ^= *b as u64;
                h = h.wrapping_mul(0x100000001b3);
            }
        };
        feed(&self.version.to_be_bytes());
        feed(self.policy_yaml.as_bytes());
        feed(&[0]);
        feed(self.vsf_key.as_bytes());
        feed(&[0]);
        feed(self.scheduler.as_bytes());
        h
    }

    /// Whether the carried signature matches the content. Agents refuse
    /// to apply a bundle that fails this check.
    pub fn verify(&self) -> bool {
        self.signature != 0 && self.signature == self.compute_signature()
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.version);
        w.string(2, &self.policy_yaml);
        w.string(3, &self.vsf_key);
        w.string(4, &self.scheduler);
        w.uint(5, self.signature);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ConfigBundlePb> {
        let mut m = ConfigBundlePb::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.version = v.as_u64()?,
                2 => m.policy_yaml = v.as_str()?.to_string(),
                3 => m.vsf_key = v.as_str()?.to_string(),
                4 => m.scheduler = v.as_str()?.to_string(),
                5 => m.signature = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Master → agent: apply this configuration bundle transactionally.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigBundlePush {
    pub enb_id: EnbId,
    pub bundle: ConfigBundlePb,
}

impl ConfigBundlePush {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.message(2, |m| self.bundle.encode(m));
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ConfigBundlePush> {
        let mut m = ConfigBundlePush::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.bundle = ConfigBundlePb::decode(v.as_bytes()?)?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Agent → master: outcome of a bundle apply. Carries the signature back
/// so the master can attribute the ack to the exact bundle it pushed
/// (retried pushes after a shed frame dedupe on (agent, signature)).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct ConfigBundleAck {
    pub enb_id: EnbId,
    pub version: u64,
    pub signature: u64,
    pub ok: bool,
    pub error: String,
}

impl ConfigBundleAck {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.version);
        w.uint(3, self.signature);
        w.uint(4, self.ok as u64);
        w.string(5, &self.error);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ConfigBundleAck> {
        let mut m = ConfigBundleAck::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.version = v.as_u64()?,
                3 => m.signature = v.as_u64()?,
                4 => m.ok = v.as_u64()? != 0,
                5 => m.error = v.as_str()?.to_string(),
                _ => {}
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{FlexranMessage, Header};

    #[test]
    fn bundle_signing_detects_tampering() {
        let b = ConfigBundlePb::signed(3, "mac:\n".into(), "max-cqi".into(), "max-cqi".into());
        assert!(b.verify());
        let mut tampered = b.clone();
        tampered.scheduler = "round-robin".into();
        assert!(!tampered.verify());
        let mut unsigned = ConfigBundlePb::signed(3, String::new(), String::new(), String::new());
        unsigned.signature = 0;
        assert!(!unsigned.verify(), "unsigned bundles never verify");
    }

    #[test]
    fn cell_config_roundtrips_through_wire_and_types() {
        let cfg = CellConfig::paper_default(CellId(0));
        let pb = CellConfigPb::from_config(&cfg);
        let msg = FlexranMessage::ConfigReply(ConfigReply {
            enb_id: EnbId(3),
            cells: vec![pb],
            ues: vec![],
        });
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::ConfigReply(rep) = got else {
            panic!("wrong variant");
        };
        let restored = rep.cells[0].to_config().unwrap();
        assert_eq!(restored, cfg);
    }

    #[test]
    fn ue_config_roundtrip() {
        let cfg = UeConfig::new(Rnti(0x100), CellId(0));
        let pb = UeConfigPb::from_config(&cfg);
        let msg = FlexranMessage::ConfigReply(ConfigReply {
            enb_id: EnbId(1),
            cells: vec![],
            ues: vec![pb],
        });
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::ConfigReply(rep) = got else {
            panic!("wrong variant");
        };
        let restored = rep.ues[0].to_config().unwrap();
        assert_eq!(restored.rnti, cfg.rnti);
        assert_eq!(restored.slice, cfg.slice);
    }

    #[test]
    fn request_scope_roundtrip() {
        for (scope, cell) in [
            (ConfigScope::Enb, None),
            (ConfigScope::Cell, Some(CellId(0))),
            (ConfigScope::Ue, Some(CellId(2))),
        ] {
            let msg = FlexranMessage::ConfigRequest(ConfigRequest { scope, cell });
            let bytes = msg.encode(Header::default());
            let (_, got) = FlexranMessage::decode(&bytes).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn negative_tx_power_survives() {
        let mut cfg = CellConfig::paper_default(CellId(1));
        cfg.tx_power = Dbm(-10.5);
        let pb = CellConfigPb::from_config(&cfg);
        let mut w = WireWriter::new();
        pb.encode(&mut w);
        let got = CellConfigPb::decode(&w.finish()).unwrap();
        assert_eq!(got.tx_power_cdbm, -1050);
        assert_eq!(got.to_config().unwrap().tx_power, Dbm(-10.5));
    }
}
