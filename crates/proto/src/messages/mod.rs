//! The FlexRAN protocol messages.
//!
//! One module per call type of the FlexRAN Agent API (paper Table 1):
//!
//! * [`config`] — configuration get/set (synchronous).
//! * [`stats`] — statistics request/reply (asynchronous).
//! * [`commands`] — control commands (synchronous).
//! * [`events`] — event triggers (asynchronous) and subframe sync.
//! * [`delegation`] — control delegation: VSF push & policy
//!   reconfiguration (synchronous).
//!
//! plus the session-management messages ([`Hello`], [`Echo`]) and the
//! envelope ([`FlexranMessage`]) that frames them all with a [`Header`].

pub mod commands;
pub mod config;
pub mod delegation;
pub mod events;
pub mod stats;

use bytes::Bytes;
use flexran_types::ids::EnbId;
use flexran_types::{FlexError, Result};

use crate::category::MessageCategory;
use crate::wire::{crc32, WireReader, WireWriter};

pub use commands::{
    AbsCommand, DlSchedulingCommand, DrxCommand, HandoverCommand, ScellCommand, UlSchedulingCommand,
};
pub use config::{ConfigBundleAck, ConfigBundlePb, ConfigBundlePush, ConfigReply, ConfigRequest};
pub use delegation::{DelegationAck, PolicyReconfiguration, VsfArtifact, VsfPush};
pub use events::{EventNotification, SubframeTrigger};
pub use stats::{
    CellReport, ReportConfig, ReportFlags, ReportType, StatsReply, StatsRequest, UeReport,
};

/// Protocol version spoken by this implementation.
pub const PROTOCOL_VERSION: u32 = 1;

/// Envelope header carried by every message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    pub version: u32,
    /// Transaction id correlating requests and replies.
    pub xid: u32,
}

impl Default for Header {
    fn default() -> Self {
        Header {
            version: PROTOCOL_VERSION,
            xid: 0,
        }
    }
}

impl Header {
    pub fn with_xid(xid: u32) -> Self {
        Header {
            version: PROTOCOL_VERSION,
            xid,
        }
    }

    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.version as u64);
        w.uint(2, self.xid as u64);
    }

    fn decode(data: &[u8]) -> Result<Header> {
        let mut h = Header { version: 0, xid: 0 };
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => h.version = v.as_u32()?,
                2 => h.xid = v.as_u32()?,
                _ => {}
            }
        }
        Ok(h)
    }
}

/// Agent hello: announces the eNodeB and its capabilities when the session
/// is established.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Hello {
    pub enb_id: EnbId,
    pub n_cells: u32,
    /// Capability strings (e.g. `"dl_scheduling"`, `"vsf_dsl"`).
    pub capabilities: Vec<String>,
    /// Signature of the config bundle the agent is running (0 = none).
    /// Lets the master detect drift the moment a restarted agent
    /// re-introduces itself. Skip-if-zero keeps pre-rollout envelopes
    /// byte-identical.
    pub applied_config: u64,
}

impl Hello {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.n_cells as u64);
        for c in &self.capabilities {
            w.string(3, c);
        }
        w.uint(4, self.applied_config);
    }

    fn decode(data: &[u8]) -> Result<Hello> {
        let mut m = Hello::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.n_cells = v.as_u32()?,
                3 => m.capabilities.push(v.as_str()?.to_string()),
                4 => m.applied_config = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Echo request/reply payload (liveness and RTT measurement).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Echo {
    /// Sender timestamp in microseconds (opaque to the peer).
    pub timestamp_us: u64,
    pub payload: Vec<u8>,
}

impl Echo {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.timestamp_us);
        w.bytes_field(2, &self.payload);
    }

    fn decode(data: &[u8]) -> Result<Echo> {
        let mut m = Echo::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.timestamp_us = v.as_u64()?,
                2 => m.payload = v.as_bytes()?.to_vec(),
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Heartbeat probe/acknowledgement payload. The agent sends a probe every
/// `heartbeat_period` TTIs; the master acks with the same sequence number.
/// Missed acks drive the agent's failover state machine, missed probes the
/// master's per-session staleness marking.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct Heartbeat {
    /// Monotonic per-session sequence number.
    pub seq: u64,
    /// Sender's current TTI when the probe/ack was emitted.
    pub tti: u64,
    /// Signature of the config bundle the agent is running (0 = none;
    /// always 0 on master-originated probes). Piggybacking on the
    /// heartbeat gives the rollout controller a continuous drift signal
    /// without new periodic traffic; skip-if-zero keeps pre-rollout
    /// probes byte-identical.
    pub applied_config: u64,
}

impl Heartbeat {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.seq);
        w.uint(2, self.tti);
        w.uint(3, self.applied_config);
    }

    fn decode(data: &[u8]) -> Result<Heartbeat> {
        let mut m = Heartbeat::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.seq = v.as_u64()?,
                2 => m.tti = v.as_u64()?,
                3 => m.applied_config = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Full-state re-sync request (master → agent). Sent when the master's
/// view of an agent is stale beyond repair — most importantly after a
/// master crash, where the RIB was rebuilt from the snapshot + journal and
/// every epoch was marked stale. The agent answers with a fresh
/// `ConfigReply` plus a full `StatsReply` (all flags), closing the
/// recovery loop that PR 1's replay protocol opened in the other
/// direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ResyncRequest {
    pub enb_id: EnbId,
    /// Master TTI of the last state it still trusts (0 = nothing).
    pub since_tti: u64,
}

impl ResyncRequest {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.since_tti);
    }

    fn decode(data: &[u8]) -> Result<ResyncRequest> {
        let mut m = ResyncRequest::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.since_tti = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Every message the FlexRAN protocol can carry.
#[derive(Debug, Clone, PartialEq)]
pub enum FlexranMessage {
    Hello(Hello),
    EchoRequest(Echo),
    EchoReply(Echo),
    Heartbeat(Heartbeat),
    HeartbeatAck(Heartbeat),
    ConfigRequest(ConfigRequest),
    ConfigReply(ConfigReply),
    StatsRequest(StatsRequest),
    SubframeTrigger(SubframeTrigger),
    StatsReply(StatsReply),
    EventNotification(EventNotification),
    DlSchedulingCommand(DlSchedulingCommand),
    UlSchedulingCommand(UlSchedulingCommand),
    HandoverCommand(HandoverCommand),
    DrxCommand(DrxCommand),
    AbsCommand(AbsCommand),
    ScellCommand(ScellCommand),
    VsfPush(VsfPush),
    PolicyReconfiguration(PolicyReconfiguration),
    DelegationAck(DelegationAck),
    ResyncRequest(ResyncRequest),
    ConfigBundlePush(ConfigBundlePush),
    ConfigBundleAck(ConfigBundleAck),
}

/// Envelope field numbers (protobuf `oneof` style).
const F_HEADER: u32 = 1;
/// Envelope integrity trailer: a CRC-32 of everything before it, always
/// the final five bytes of an encoded envelope (one tag byte + fixed32).
/// TCP's 16-bit ones-complement checksum is too weak to protect
/// control-plane state; a flipped bit that slipped through it would
/// otherwise decode into a structurally valid message and poison the RIB
/// with phantom cells and UEs. The fixed-width trailer also makes
/// truncation self-evident: a shortened envelope no longer ends in a
/// trailer at all.
const F_INTEGRITY: u32 = 2;
/// Encoded tag byte of [`F_INTEGRITY`]: field 2, wire type fixed32.
const INTEGRITY_KEY: u8 = (F_INTEGRITY << 3) as u8 | 5;
/// Tag byte + 4 checksum bytes.
const INTEGRITY_TRAILER_LEN: usize = 5;
const F_HELLO: u32 = 10;
const F_ECHO_REQ: u32 = 11;
const F_ECHO_REP: u32 = 12;
const F_CONFIG_REQ: u32 = 13;
const F_CONFIG_REP: u32 = 14;
const F_STATS_REQ: u32 = 15;
const F_SF_TRIGGER: u32 = 16;
const F_STATS_REP: u32 = 17;
const F_EVENT: u32 = 18;
const F_DL_SCHED: u32 = 19;
const F_UL_SCHED: u32 = 20;
const F_HANDOVER: u32 = 21;
const F_DRX: u32 = 22;
const F_ABS: u32 = 23;
const F_VSF_PUSH: u32 = 24;
const F_POLICY: u32 = 25;
const F_DELEG_ACK: u32 = 26;
const F_SCELL: u32 = 27;
const F_HEARTBEAT: u32 = 28;
const F_HEARTBEAT_ACK: u32 = 29;
const F_RESYNC_REQ: u32 = 30;
const F_CONFIG_BUNDLE_PUSH: u32 = 31;
const F_CONFIG_BUNDLE_ACK: u32 = 32;

impl FlexranMessage {
    /// Serialize with the given header. The result is protobuf-wire
    /// compatible and is what transports frame and count.
    pub fn encode(&self, header: Header) -> Bytes {
        let mut w = WireWriter::new();
        self.encode_into(header, &mut w);
        w.finish()
    }

    /// Serialize into a caller-provided writer (cleared first) —
    /// the allocation-free path for transports that keep one writer
    /// across sends.
    pub fn encode_into(&self, header: Header, w: &mut WireWriter) {
        w.clear();
        w.message(F_HEADER, |m| header.encode(m));
        match self {
            FlexranMessage::Hello(b) => w.message(F_HELLO, |m| b.encode(m)),
            FlexranMessage::EchoRequest(b) => w.message(F_ECHO_REQ, |m| b.encode(m)),
            FlexranMessage::EchoReply(b) => w.message(F_ECHO_REP, |m| b.encode(m)),
            FlexranMessage::Heartbeat(b) => w.message(F_HEARTBEAT, |m| b.encode(m)),
            FlexranMessage::HeartbeatAck(b) => w.message(F_HEARTBEAT_ACK, |m| b.encode(m)),
            FlexranMessage::ConfigRequest(b) => w.message(F_CONFIG_REQ, |m| b.encode(m)),
            FlexranMessage::ConfigReply(b) => w.message(F_CONFIG_REP, |m| b.encode(m)),
            FlexranMessage::StatsRequest(b) => w.message(F_STATS_REQ, |m| b.encode(m)),
            FlexranMessage::SubframeTrigger(b) => w.message(F_SF_TRIGGER, |m| b.encode(m)),
            FlexranMessage::StatsReply(b) => w.message(F_STATS_REP, |m| b.encode(m)),
            FlexranMessage::EventNotification(b) => w.message(F_EVENT, |m| b.encode(m)),
            FlexranMessage::DlSchedulingCommand(b) => w.message(F_DL_SCHED, |m| b.encode(m)),
            FlexranMessage::UlSchedulingCommand(b) => w.message(F_UL_SCHED, |m| b.encode(m)),
            FlexranMessage::HandoverCommand(b) => w.message(F_HANDOVER, |m| b.encode(m)),
            FlexranMessage::DrxCommand(b) => w.message(F_DRX, |m| b.encode(m)),
            FlexranMessage::AbsCommand(b) => w.message(F_ABS, |m| b.encode(m)),
            FlexranMessage::ScellCommand(b) => w.message(F_SCELL, |m| b.encode(m)),
            FlexranMessage::VsfPush(b) => w.message(F_VSF_PUSH, |m| b.encode(m)),
            FlexranMessage::PolicyReconfiguration(b) => w.message(F_POLICY, |m| b.encode(m)),
            FlexranMessage::DelegationAck(b) => w.message(F_DELEG_ACK, |m| b.encode(m)),
            FlexranMessage::ResyncRequest(b) => w.message(F_RESYNC_REQ, |m| b.encode(m)),
            FlexranMessage::ConfigBundlePush(b) => w.message(F_CONFIG_BUNDLE_PUSH, |m| b.encode(m)),
            FlexranMessage::ConfigBundleAck(b) => w.message(F_CONFIG_BUNDLE_ACK, |m| b.encode(m)),
        }
        let crc = crc32(w.as_slice());
        w.fixed32_always(F_INTEGRITY, crc);
    }

    /// Parse an envelope. The integrity trailer is verified first: a
    /// missing trailer (truncation, garbage) or a CRC mismatch (bit
    /// corruption) rejects the whole envelope before any field is looked
    /// at. Unknown body fields fail loudly (the envelope is the one place
    /// where "I don't know this message" must be surfaced); unknown
    /// fields *inside* known messages are skipped.
    pub fn decode(data: &[u8]) -> Result<(Header, FlexranMessage)> {
        let Some(body_len) = data.len().checked_sub(INTEGRITY_TRAILER_LEN) else {
            return Err(FlexError::Codec(
                "envelope shorter than its integrity trailer".into(),
            ));
        };
        // lint:allow(panic): body_len = len - TRAILER_LEN ≤ len.
        let (data, trailer) = data.split_at(body_len);
        let &[key, c0, c1, c2, c3] = trailer else {
            return Err(FlexError::Codec(
                "envelope integrity trailer missing (truncated or garbage frame)".into(),
            ));
        };
        if key != INTEGRITY_KEY {
            return Err(FlexError::Codec(
                "envelope integrity trailer missing (truncated or garbage frame)".into(),
            ));
        }
        let want = u32::from_le_bytes([c0, c1, c2, c3]);
        let got = crc32(data);
        if got != want {
            return Err(FlexError::Codec(format!(
                "envelope integrity check failed: crc {got:#010x}, trailer says {want:#010x}"
            )));
        }
        let mut header: Option<Header> = None;
        let mut body: Option<FlexranMessage> = None;
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                F_HEADER => header = Some(Header::decode(v.as_bytes()?)?),
                F_HELLO => body = Some(FlexranMessage::Hello(Hello::decode(v.as_bytes()?)?)),
                F_ECHO_REQ => {
                    body = Some(FlexranMessage::EchoRequest(Echo::decode(v.as_bytes()?)?))
                }
                F_ECHO_REP => body = Some(FlexranMessage::EchoReply(Echo::decode(v.as_bytes()?)?)),
                F_HEARTBEAT => {
                    body = Some(FlexranMessage::Heartbeat(Heartbeat::decode(v.as_bytes()?)?))
                }
                F_HEARTBEAT_ACK => {
                    body = Some(FlexranMessage::HeartbeatAck(Heartbeat::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_CONFIG_REQ => {
                    body = Some(FlexranMessage::ConfigRequest(ConfigRequest::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_CONFIG_REP => {
                    body = Some(FlexranMessage::ConfigReply(ConfigReply::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_STATS_REQ => {
                    body = Some(FlexranMessage::StatsRequest(StatsRequest::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_SF_TRIGGER => {
                    body = Some(FlexranMessage::SubframeTrigger(SubframeTrigger::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_STATS_REP => {
                    body = Some(FlexranMessage::StatsReply(StatsReply::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_EVENT => {
                    body = Some(FlexranMessage::EventNotification(
                        EventNotification::decode(v.as_bytes()?)?,
                    ))
                }
                F_DL_SCHED => {
                    body = Some(FlexranMessage::DlSchedulingCommand(
                        DlSchedulingCommand::decode(v.as_bytes()?)?,
                    ))
                }
                F_UL_SCHED => {
                    body = Some(FlexranMessage::UlSchedulingCommand(
                        UlSchedulingCommand::decode(v.as_bytes()?)?,
                    ))
                }
                F_HANDOVER => {
                    body = Some(FlexranMessage::HandoverCommand(HandoverCommand::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_DRX => {
                    body = Some(FlexranMessage::DrxCommand(DrxCommand::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_ABS => {
                    body = Some(FlexranMessage::AbsCommand(AbsCommand::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_SCELL => {
                    body = Some(FlexranMessage::ScellCommand(ScellCommand::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_VSF_PUSH => body = Some(FlexranMessage::VsfPush(VsfPush::decode(v.as_bytes()?)?)),
                F_POLICY => {
                    body = Some(FlexranMessage::PolicyReconfiguration(
                        PolicyReconfiguration::decode(v.as_bytes()?)?,
                    ))
                }
                F_DELEG_ACK => {
                    body = Some(FlexranMessage::DelegationAck(DelegationAck::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_RESYNC_REQ => {
                    body = Some(FlexranMessage::ResyncRequest(ResyncRequest::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_CONFIG_BUNDLE_PUSH => {
                    body = Some(FlexranMessage::ConfigBundlePush(ConfigBundlePush::decode(
                        v.as_bytes()?,
                    )?))
                }
                F_CONFIG_BUNDLE_ACK => {
                    body = Some(FlexranMessage::ConfigBundleAck(ConfigBundleAck::decode(
                        v.as_bytes()?,
                    )?))
                }
                other => return Err(FlexError::Codec(format!("unknown envelope field {other}"))),
            }
        }
        let header = header.ok_or_else(|| FlexError::Codec("envelope missing header".into()))?;
        let body = body.ok_or_else(|| FlexError::Codec("envelope missing body".into()))?;
        Ok((header, body))
    }

    /// Traffic category for overhead accounting (Fig. 7).
    pub fn category(&self) -> MessageCategory {
        match self {
            FlexranMessage::Hello(_)
            | FlexranMessage::ConfigRequest(_)
            | FlexranMessage::ConfigReply(_)
            | FlexranMessage::StatsRequest(_)
            | FlexranMessage::ResyncRequest(_) => MessageCategory::AgentManagement,
            FlexranMessage::EchoRequest(_)
            | FlexranMessage::EchoReply(_)
            | FlexranMessage::Heartbeat(_)
            | FlexranMessage::HeartbeatAck(_) => MessageCategory::Liveness,
            FlexranMessage::SubframeTrigger(_) => MessageCategory::Sync,
            FlexranMessage::StatsReply(_) => MessageCategory::StatsReporting,
            FlexranMessage::EventNotification(_) => MessageCategory::Events,
            FlexranMessage::DlSchedulingCommand(_)
            | FlexranMessage::UlSchedulingCommand(_)
            | FlexranMessage::HandoverCommand(_)
            | FlexranMessage::DrxCommand(_)
            | FlexranMessage::AbsCommand(_)
            | FlexranMessage::ScellCommand(_) => MessageCategory::Commands,
            FlexranMessage::VsfPush(_)
            | FlexranMessage::PolicyReconfiguration(_)
            | FlexranMessage::DelegationAck(_) => MessageCategory::Delegation,
            FlexranMessage::ConfigBundlePush(_) | FlexranMessage::ConfigBundleAck(_) => {
                MessageCategory::Config
            }
        }
    }

    /// Short stable name for logs and counters.
    pub fn kind(&self) -> &'static str {
        match self {
            FlexranMessage::Hello(_) => "hello",
            FlexranMessage::EchoRequest(_) => "echo-request",
            FlexranMessage::EchoReply(_) => "echo-reply",
            FlexranMessage::Heartbeat(_) => "heartbeat",
            FlexranMessage::HeartbeatAck(_) => "heartbeat-ack",
            FlexranMessage::ConfigRequest(_) => "config-request",
            FlexranMessage::ConfigReply(_) => "config-reply",
            FlexranMessage::StatsRequest(_) => "stats-request",
            FlexranMessage::SubframeTrigger(_) => "subframe-trigger",
            FlexranMessage::StatsReply(_) => "stats-reply",
            FlexranMessage::EventNotification(_) => "event",
            FlexranMessage::DlSchedulingCommand(_) => "dl-scheduling",
            FlexranMessage::UlSchedulingCommand(_) => "ul-scheduling",
            FlexranMessage::HandoverCommand(_) => "handover",
            FlexranMessage::DrxCommand(_) => "drx",
            FlexranMessage::AbsCommand(_) => "abs",
            FlexranMessage::ScellCommand(_) => "scell",
            FlexranMessage::VsfPush(_) => "vsf-push",
            FlexranMessage::PolicyReconfiguration(_) => "policy-reconfiguration",
            FlexranMessage::DelegationAck(_) => "delegation-ack",
            FlexranMessage::ResyncRequest(_) => "resync-request",
            FlexranMessage::ConfigBundlePush(_) => "config-bundle-push",
            FlexranMessage::ConfigBundleAck(_) => "config-bundle-ack",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn hello_roundtrip() {
        let msg = FlexranMessage::Hello(Hello {
            enb_id: EnbId(7),
            n_cells: 2,
            capabilities: vec!["dl_scheduling".into(), "vsf_dsl".into()],
            applied_config: 0,
        });
        let bytes = msg.encode(Header::with_xid(99));
        let (h, got) = FlexranMessage::decode(&bytes).unwrap();
        assert_eq!(h.xid, 99);
        assert_eq!(h.version, PROTOCOL_VERSION);
        assert_eq!(got, msg);
        assert_eq!(got.category(), MessageCategory::AgentManagement);
    }

    #[test]
    fn echo_roundtrip() {
        let msg = FlexranMessage::EchoRequest(Echo {
            timestamp_us: 123456,
            payload: vec![1, 2, 3],
        });
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        assert_eq!(got, msg);
    }

    /// Append a valid integrity trailer to a hand-crafted envelope, so
    /// the tests below exercise the field-level checks rather than
    /// tripping on the trailer.
    fn sealed(mut w: WireWriter) -> Bytes {
        let crc = crc32(w.as_slice());
        w.fixed32_always(F_INTEGRITY, crc);
        w.finish()
    }

    #[test]
    fn envelope_requires_header_and_body() {
        // Body-only.
        let mut w = WireWriter::new();
        w.message(F_HELLO, |m| Hello::default().encode(m));
        assert!(FlexranMessage::decode(&sealed(w)).is_err());
        // Header-only.
        let mut w = WireWriter::new();
        w.message(F_HEADER, |m| Header::default().encode(m));
        assert!(FlexranMessage::decode(&sealed(w)).is_err());
        // Unknown envelope field.
        let mut w = WireWriter::new();
        w.message(F_HEADER, |m| Header::default().encode(m));
        w.message(200, |m| m.uint(1, 1));
        assert!(FlexranMessage::decode(&sealed(w)).is_err());
    }

    #[test]
    fn integrity_trailer_catches_every_single_bit_flip() {
        let msg = FlexranMessage::Hello(Hello {
            enb_id: EnbId(7),
            n_cells: 2,
            capabilities: vec!["dl_scheduling".into()],
            applied_config: 0,
        });
        let bytes = msg.encode(Header::with_xid(9)).to_vec();
        // Flip each bit of the envelope in turn — body, trailer key and
        // checksum alike — and demand a decode error every time. This is
        // the guarantee the chaos engine's wire-corruption fault leans
        // on: a mangled frame must never fold into the RIB.
        for byte in 0..bytes.len() {
            for bit in 0..8 {
                let mut mutated = bytes.clone();
                mutated[byte] ^= 1 << bit;
                assert!(
                    FlexranMessage::decode(&mutated).is_err(),
                    "bit {bit} of byte {byte} flipped undetected"
                );
            }
        }
        // Truncation at any length is equally fatal.
        for keep in 0..bytes.len() {
            assert!(
                FlexranMessage::decode(&bytes[..keep]).is_err(),
                "truncation to {keep} bytes went undetected"
            );
        }
        // And the pristine envelope still decodes.
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn sync_message_is_tiny() {
        // Per-TTI sync must stay a few tens of bytes or the Fig. 7 sync
        // series would be wrong by construction.
        let msg = FlexranMessage::SubframeTrigger(SubframeTrigger {
            enb_id: EnbId(1),
            sfn: 1023,
            sf: 9,
            tti: u32::MAX as u64,
        });
        let bytes = msg.encode(Header::with_xid(u32::MAX));
        assert!(bytes.len() <= 40, "sync message is {} bytes", bytes.len());
    }

    proptest! {
        /// Hostile input safety: arbitrary bytes must produce an error or
        /// a message — never a panic (agents parse what the network
        /// delivers).
        #[test]
        fn decode_never_panics(data in proptest::collection::vec(any::<u8>(), 0..512)) {
            let _ = FlexranMessage::decode(&data);
        }

        /// Envelope roundtrip for randomized echo payloads and xids.
        #[test]
        fn echo_roundtrip_random(
            xid in any::<u32>(),
            ts in any::<u64>(),
            payload in proptest::collection::vec(any::<u8>(), 0..256),
        ) {
            let msg = FlexranMessage::EchoRequest(Echo { timestamp_us: ts, payload });
            let bytes = msg.encode(Header::with_xid(xid));
            let (h, got) = FlexranMessage::decode(&bytes).unwrap();
            prop_assert_eq!(h.xid, xid);
            prop_assert_eq!(got, msg);
        }
    }

    #[test]
    fn categories_cover_all_kinds() {
        use MessageCategory as C;
        let samples: Vec<(FlexranMessage, C)> = vec![
            (FlexranMessage::Hello(Hello::default()), C::AgentManagement),
            (
                FlexranMessage::SubframeTrigger(SubframeTrigger::default()),
                C::Sync,
            ),
            (
                FlexranMessage::StatsReply(StatsReply::default()),
                C::StatsReporting,
            ),
            (
                FlexranMessage::EventNotification(EventNotification::default()),
                C::Events,
            ),
            (
                FlexranMessage::DlSchedulingCommand(DlSchedulingCommand::default()),
                C::Commands,
            ),
            (FlexranMessage::VsfPush(VsfPush::default()), C::Delegation),
            (FlexranMessage::Heartbeat(Heartbeat::default()), C::Liveness),
            (
                FlexranMessage::HeartbeatAck(Heartbeat::default()),
                C::Liveness,
            ),
            (FlexranMessage::EchoRequest(Echo::default()), C::Liveness),
        ];
        for (msg, cat) in samples {
            assert_eq!(msg.category(), cat, "{}", msg.kind());
        }
    }

    #[test]
    fn resync_request_roundtrip() {
        let msg = FlexranMessage::ResyncRequest(ResyncRequest {
            enb_id: EnbId(3),
            since_tti: 4242,
        });
        let bytes = msg.encode(Header::with_xid(5));
        let (h, got) = FlexranMessage::decode(&bytes).unwrap();
        assert_eq!(h.xid, 5);
        assert_eq!(got, msg);
        assert_eq!(got.category(), MessageCategory::AgentManagement);
        assert_eq!(got.kind(), "resync-request");
    }

    #[test]
    fn heartbeat_roundtrip_and_size() {
        let msg = FlexranMessage::Heartbeat(Heartbeat {
            seq: 42,
            tti: 9001,
            applied_config: 0,
        });
        let bytes = msg.encode(Header::with_xid(7));
        let (h, got) = FlexranMessage::decode(&bytes).unwrap();
        assert_eq!(h.xid, 7);
        assert_eq!(got, msg);
        // Liveness probes ride the control channel every heartbeat period;
        // they must stay tiny so Fig. 7's overhead accounting is honest.
        assert!(bytes.len() <= 24, "heartbeat is {} bytes", bytes.len());
        let ack = FlexranMessage::HeartbeatAck(Heartbeat {
            seq: 42,
            tti: 9001,
            applied_config: 0,
        });
        let (_, got) = FlexranMessage::decode(&ack.encode(Header::with_xid(8))).unwrap();
        assert_eq!(got, ack);
    }
}
