//! Statistics messages (the *Statistics* call type of the Agent API).
//!
//! The report contents mirror what the OAI FlexRAN agent ships per UE:
//! wideband + per-subband CQI, buffer status per logical-channel group,
//! power headroom, per-bearer RLC queue state, HARQ state, uplink SINR,
//! RRC measurements and PDCP counters. The richness matters: these
//! reports *are* the ~100 Mb/s agent→master load of Fig. 7a, so their
//! on-wire size has to be representative.
//!
//! Reports are requested with a [`ReportConfig`]: one-off, periodic (the
//! period in TTIs) or triggered (sent only when contents change) — the
//! three reporting modes of paper §4.3.1.

use flexran_types::ids::EnbId;
use flexran_types::Result;

use crate::wire::{WireReader, WireWriter};

/// Which statistic groups a report should include (bitmask).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportFlags(pub u64);

impl ReportFlags {
    pub const CQI: ReportFlags = ReportFlags(1);
    pub const BSR: ReportFlags = ReportFlags(1 << 1);
    pub const RLC: ReportFlags = ReportFlags(1 << 2);
    pub const PDCP: ReportFlags = ReportFlags(1 << 3);
    pub const MAC: ReportFlags = ReportFlags(1 << 4);
    pub const HARQ: ReportFlags = ReportFlags(1 << 5);
    pub const RRC_MEAS: ReportFlags = ReportFlags(1 << 6);
    pub const CELL: ReportFlags = ReportFlags(1 << 7);

    /// Everything — the configuration the Fig. 7 worst case uses.
    pub const ALL: ReportFlags = ReportFlags(0xFF);

    pub fn contains(self, other: ReportFlags) -> bool {
        self.0 & other.0 == other.0
    }

    pub fn union(self, other: ReportFlags) -> ReportFlags {
        ReportFlags(self.0 | other.0)
    }
}

/// How often a report is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReportType {
    /// Single reply to the request.
    #[default]
    OneOff,
    /// Every `period` TTIs.
    Periodic { period: u32 },
    /// Only when the report contents changed since the last one.
    Triggered,
}

/// A full report subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReportConfig {
    pub report_type: ReportType,
    pub flags: ReportFlags,
}

/// Statistics request (master → agent).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct StatsRequest {
    pub config: ReportConfig,
}

impl StatsRequest {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        let (ty, period) = match self.config.report_type {
            ReportType::OneOff => (0u64, 0u64),
            ReportType::Periodic { period } => (1, period as u64),
            ReportType::Triggered => (2, 0),
        };
        w.uint(1, ty);
        w.uint(2, period);
        w.uint(3, self.config.flags.0);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<StatsRequest> {
        let mut ty = 0u64;
        let mut period = 0u32;
        let mut flags = ReportFlags::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => ty = v.as_u64()?,
                2 => period = v.as_u32()?,
                3 => flags = ReportFlags(v.as_u64()?),
                _ => {}
            }
        }
        let report_type = match ty {
            1 => ReportType::Periodic {
                period: period.max(1),
            },
            2 => ReportType::Triggered,
            _ => ReportType::OneOff,
        };
        Ok(StatsRequest {
            config: ReportConfig { report_type, flags },
        })
    }
}

/// Per-bearer RLC state inside a UE report.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RlcReport {
    pub lcid: u8,
    pub tx_queue_bytes: u64,
    pub hol_delay_ms: u64,
    pub status_pdu_bytes: u32,
}

impl RlcReport {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.lcid as u64 + 1);
        w.uint(2, self.tx_queue_bytes);
        w.uint(3, self.hol_delay_ms);
        w.uint(4, self.status_pdu_bytes as u64);
    }

    fn decode(data: &[u8]) -> Result<RlcReport> {
        let mut m = RlcReport::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.lcid = (v.as_u64()?.saturating_sub(1)) as u8,
                2 => m.tx_queue_bytes = v.as_u64()?,
                3 => m.hol_delay_ms = v.as_u64()?,
                4 => m.status_pdu_bytes = v.as_u32()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// One UE's statistics on the wire.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct UeReport {
    pub rnti: u16,
    /// Serving (primary) cell within the reporting eNodeB.
    pub cell: u16,
    pub connected: bool,
    pub slice: u8,
    pub priority_group: u8,
    /// Wideband CQI plus per-subband CQIs.
    pub wideband_cqi: u8,
    pub subband_cqi: Vec<u64>,
    /// Buffer status per logical-channel group (4 entries).
    pub bsr: Vec<u64>,
    /// Power headroom, dB.
    pub phr_db: i64,
    /// RLC state per bearer.
    pub rlc: Vec<RlcReport>,
    /// Pending MAC control elements.
    pub pending_mac_ces: u32,
    /// Downlink HARQ process states (8 entries; 0 idle / 1 busy).
    pub harq_states: Vec<u64>,
    /// Uplink wideband SINR in deci-dB (signed).
    pub ul_sinr_decidb: i64,
    /// Uplink per-subband SINR, deci-dB + 700 offset (packed unsigned).
    pub ul_subband_sinr: Vec<u64>,
    /// Serving-cell RSRP / RSRQ in deci-dBm / deci-dB (signed).
    pub rsrp_decidbm: i64,
    pub rsrq_decidb: i64,
    /// PDCP cumulative counters.
    pub pdcp_tx_bytes: u64,
    pub pdcp_tx_sn: u32,
    /// MAC cumulative counters.
    pub dl_tbs_bits_total: u64,
    pub ul_tbs_bits_total: u64,
    pub harq_tx: u64,
    pub harq_retx: u64,
    /// Scheduler view.
    pub avg_rate_bps: u64,
    pub last_mcs: u8,
    /// TTI the CQI was measured at.
    pub cqi_timestamp: u64,
    /// Second-codeword subband CQIs (present even in TM1 reports from OAI).
    pub subband_cqi_cw1: Vec<u64>,
    /// HARQ round counter per process (8 entries).
    pub harq_rounds: Vec<u64>,
    /// Transport block size currently held by each HARQ process, bytes.
    pub tbs_per_process: Vec<u64>,
    /// Uplink power-control state, deci-dBm (signed).
    pub pusch_power_decidbm: i64,
    pub pucch_power_decidbm: i64,
    /// PDCP receive-direction counters.
    pub pdcp_rx_bytes: u64,
    pub pdcp_rx_sn: u32,
    /// Activated secondary component carriers.
    pub active_scells: Vec<u64>,
}

impl UeReport {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.rnti as u64);
        w.uint(2, self.connected as u64);
        w.uint(3, self.slice as u64);
        w.uint(4, self.priority_group as u64);
        w.uint(5, self.wideband_cqi as u64);
        w.packed_uints(6, &self.subband_cqi);
        w.packed_uints(7, &self.bsr);
        w.sint(8, self.phr_db);
        for rlc in &self.rlc {
            w.message(9, |m| rlc.encode(m));
        }
        w.uint(10, self.pending_mac_ces as u64);
        w.packed_uints(11, &self.harq_states);
        w.sint(12, self.ul_sinr_decidb);
        w.packed_uints(13, &self.ul_subband_sinr);
        w.sint(14, self.rsrp_decidbm);
        w.sint(15, self.rsrq_decidb);
        w.uint(16, self.pdcp_tx_bytes);
        w.uint(17, self.pdcp_tx_sn as u64);
        w.uint(18, self.dl_tbs_bits_total);
        w.uint(19, self.ul_tbs_bits_total);
        w.uint(20, self.harq_tx);
        w.uint(21, self.harq_retx);
        w.uint(22, self.avg_rate_bps);
        w.uint(23, self.last_mcs as u64);
        w.uint(24, self.cqi_timestamp);
        w.packed_uints(25, &self.subband_cqi_cw1);
        w.packed_uints(26, &self.harq_rounds);
        w.packed_uints(27, &self.tbs_per_process);
        w.sint(28, self.pusch_power_decidbm);
        w.sint(29, self.pucch_power_decidbm);
        w.uint(30, self.pdcp_rx_bytes);
        w.uint(31, self.pdcp_rx_sn as u64);
        w.uint(32, self.cell as u64 + 1);
        w.packed_uints(33, &self.active_scells);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<UeReport> {
        let mut m = UeReport::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.rnti = v.as_u64()? as u16,
                2 => m.connected = v.as_u64()? != 0,
                3 => m.slice = v.as_u64()? as u8,
                4 => m.priority_group = v.as_u64()? as u8,
                5 => m.wideband_cqi = v.as_u64()? as u8,
                6 => m.subband_cqi = v.as_packed_uints()?,
                7 => m.bsr = v.as_packed_uints()?,
                8 => m.phr_db = v.as_i64_zigzag()?,
                9 => m.rlc.push(RlcReport::decode(v.as_bytes()?)?),
                10 => m.pending_mac_ces = v.as_u32()?,
                11 => m.harq_states = v.as_packed_uints()?,
                12 => m.ul_sinr_decidb = v.as_i64_zigzag()?,
                13 => m.ul_subband_sinr = v.as_packed_uints()?,
                14 => m.rsrp_decidbm = v.as_i64_zigzag()?,
                15 => m.rsrq_decidb = v.as_i64_zigzag()?,
                16 => m.pdcp_tx_bytes = v.as_u64()?,
                17 => m.pdcp_tx_sn = v.as_u32()?,
                18 => m.dl_tbs_bits_total = v.as_u64()?,
                19 => m.ul_tbs_bits_total = v.as_u64()?,
                20 => m.harq_tx = v.as_u64()?,
                21 => m.harq_retx = v.as_u64()?,
                22 => m.avg_rate_bps = v.as_u64()?,
                23 => m.last_mcs = v.as_u64()? as u8,
                24 => m.cqi_timestamp = v.as_u64()?,
                25 => m.subband_cqi_cw1 = v.as_packed_uints()?,
                26 => m.harq_rounds = v.as_packed_uints()?,
                27 => m.tbs_per_process = v.as_packed_uints()?,
                28 => m.pusch_power_decidbm = v.as_i64_zigzag()?,
                29 => m.pucch_power_decidbm = v.as_i64_zigzag()?,
                30 => m.pdcp_rx_bytes = v.as_u64()?,
                31 => m.pdcp_rx_sn = v.as_u32()?,
                32 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                33 => m.active_scells = v.as_packed_uints()?,
                _ => {}
            }
        }
        Ok(m)
    }

    /// Build a report from data-plane statistics.
    ///
    /// Subband arrays are filled from the wideband measurement — the PHY
    /// abstraction has no frequency selectivity (`DESIGN.md` §7) but the
    /// fields keep their real on-wire footprint.
    pub fn from_stats(
        s: &flexran_stack::stats::UeStats,
        cell: flexran_types::ids::CellId,
        flags: ReportFlags,
    ) -> UeReport {
        let n_subbands = 13; // 50-PRB bandwidth → 13 subbands (TS 36.213)
        let mut rep = UeReport {
            rnti: s.rnti.0,
            cell: cell.0,
            connected: s.connected,
            slice: s.slice.0,
            priority_group: s.priority_group,
            active_scells: s.active_scells.iter().map(|c| *c as u64).collect(),
            ..UeReport::default()
        };
        if flags.contains(ReportFlags::CQI) {
            rep.wideband_cqi = s.cqi.0;
            rep.subband_cqi = vec![s.cqi.0 as u64; n_subbands];
            rep.subband_cqi_cw1 = vec![s.cqi.0 as u64; n_subbands];
            rep.cqi_timestamp = s.cqi_updated.0;
            let decidb = (s.sinr_db.clamp(-70.0, 70.0) * 10.0) as i64;
            rep.ul_sinr_decidb = decidb;
            // Uplink SINR per resource-block group (25 RBGs at 50 PRB).
            rep.ul_subband_sinr = vec![(decidb + 700).max(0) as u64; 25];
        }
        if flags.contains(ReportFlags::BSR) {
            let idx = flexran_stack::mac::bsr::bsr_index(s.ul_bsr_bytes.as_u64()) as u64;
            rep.bsr = vec![idx, 0, 0, 0];
            rep.phr_db = 20;
        }
        if flags.contains(ReportFlags::RLC) {
            rep.rlc = vec![
                RlcReport {
                    lcid: 1,
                    tx_queue_bytes: s.srb_queue_bytes.as_u64(),
                    hol_delay_ms: 0,
                    status_pdu_bytes: 0,
                },
                RlcReport {
                    lcid: 3,
                    tx_queue_bytes: s.dl_queue_bytes.as_u64(),
                    hol_delay_ms: s.hol_delay_ms,
                    status_pdu_bytes: 0,
                },
            ];
        }
        if flags.contains(ReportFlags::PDCP) {
            rep.pdcp_tx_bytes = s.dl_delivered_bits / 8;
            rep.pdcp_tx_sn = (s.dl_delivered_bits / 8 % 4096) as u32;
            rep.pdcp_rx_bytes = s.ul_delivered_bits / 8;
            rep.pdcp_rx_sn = (s.ul_delivered_bits / 8 % 4096) as u32;
        }
        if flags.contains(ReportFlags::MAC) {
            rep.dl_tbs_bits_total = s.dl_delivered_bits;
            rep.ul_tbs_bits_total = s.ul_delivered_bits;
            rep.avg_rate_bps = s.avg_rate_bps as u64;
            rep.last_mcs = flexran_phy::link_adaptation::mcs_for_cqi(s.cqi).0;
            rep.pusch_power_decidbm = 230;
            rep.pucch_power_decidbm = -50;
        }
        if flags.contains(ReportFlags::HARQ) {
            rep.harq_states = vec![0; 8];
            rep.harq_rounds = vec![0; 8];
            let tb = flexran_phy::tables::tbs_bits(
                flexran_phy::tables::itbs_for_mcs(
                    flexran_phy::link_adaptation::mcs_for_cqi(s.cqi).0,
                ),
                10,
            ) as u64
                / 8;
            rep.tbs_per_process = vec![tb; 8];
            rep.harq_tx = s.harq_tx;
            rep.harq_retx = s.harq_retx;
        }
        if flags.contains(ReportFlags::RRC_MEAS) {
            rep.rsrp_decidbm = (s.sinr_db.clamp(-70.0, 70.0) * 10.0) as i64 - 950;
            rep.rsrq_decidb = -105;
        }
        rep
    }
}

/// Per-cell statistics on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CellReport {
    pub cell_id: u16,
    /// Thermal noise + interference estimate, deci-dBm (signed).
    pub noise_interference_decidbm: i64,
    pub dl_prbs_used_total: u64,
    pub ul_prbs_used_total: u64,
    pub active_ues: u32,
    pub abs_muted_ttis: u64,
    pub decisions_applied: u64,
    pub missed_deadlines: u64,
}

impl CellReport {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell_id as u64 + 1);
        w.sint(2, self.noise_interference_decidbm);
        w.uint(3, self.dl_prbs_used_total);
        w.uint(4, self.ul_prbs_used_total);
        w.uint(5, self.active_ues as u64);
        w.uint(6, self.abs_muted_ttis);
        w.uint(7, self.decisions_applied);
        w.uint(8, self.missed_deadlines);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<CellReport> {
        let mut m = CellReport::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell_id = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.noise_interference_decidbm = v.as_i64_zigzag()?,
                3 => m.dl_prbs_used_total = v.as_u64()?,
                4 => m.ul_prbs_used_total = v.as_u64()?,
                5 => m.active_ues = v.as_u32()?,
                6 => m.abs_muted_ttis = v.as_u64()?,
                7 => m.decisions_applied = v.as_u64()?,
                8 => m.missed_deadlines = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Statistics reply (agent → master).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct StatsReply {
    pub enb_id: EnbId,
    /// Agent-local TTI at composition time.
    pub tti: u64,
    pub cells: Vec<CellReport>,
    pub ues: Vec<UeReport>,
}

impl StatsReply {
    /// Encode just the reply body into `w` (cleared first). The agent's
    /// delta-aware report path hashes this to detect unchanged content
    /// without cloning or re-allocating the reply.
    pub fn encode_body_into(&self, w: &mut WireWriter) {
        w.clear();
        self.encode(w);
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.tti);
        for c in &self.cells {
            w.message(3, |m| c.encode(m));
        }
        for u in &self.ues {
            w.message(4, |m| u.encode(m));
        }
    }

    pub(crate) fn decode(data: &[u8]) -> Result<StatsReply> {
        let mut m = StatsReply::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.tti = v.as_u64()?,
                3 => m.cells.push(CellReport::decode(v.as_bytes()?)?),
                4 => m.ues.push(UeReport::decode(v.as_bytes()?)?),
                _ => {}
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{FlexranMessage, Header};
    use flexran_phy::link_adaptation::Cqi;
    use flexran_stack::stats::UeStats;
    use flexran_types::ids::{Rnti, SliceId, UeId};
    use flexran_types::time::Tti;
    use flexran_types::units::Bytes;

    fn sample_stats() -> UeStats {
        UeStats {
            rnti: Rnti(0x105),
            ue: UeId(5),
            slice: SliceId(1),
            priority_group: 1,
            connected: true,
            cqi: Cqi(11),
            cqi_updated: Tti(400),
            sinr_db: 14.5,
            dl_queue_bytes: Bytes(12_345),
            srb_queue_bytes: Bytes(0),
            ul_bsr_bytes: Bytes(900),
            dl_delivered_bits: 1_000_000,
            ul_delivered_bits: 50_000,
            avg_rate_bps: 3_000_000.0,
            harq_tx: 120,
            harq_retx: 12,
            hol_delay_ms: 7,
            active_scells: vec![],
        }
    }

    #[test]
    fn report_roundtrip() {
        let rep = UeReport::from_stats(
            &sample_stats(),
            flexran_types::ids::CellId(0),
            ReportFlags::ALL,
        );
        let msg = FlexranMessage::StatsReply(StatsReply {
            enb_id: EnbId(2),
            tti: 123_456,
            cells: vec![CellReport {
                cell_id: 0,
                noise_interference_decidbm: -950,
                dl_prbs_used_total: 10_000,
                ul_prbs_used_total: 400,
                active_ues: 1,
                abs_muted_ttis: 0,
                decisions_applied: 200,
                missed_deadlines: 3,
            }],
            ues: vec![rep.clone()],
        });
        let bytes = msg.encode(Header::with_xid(4));
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::StatsReply(r) = got else {
            panic!("wrong variant");
        };
        assert_eq!(r.ues[0], rep);
        assert_eq!(r.cells[0].missed_deadlines, 3);
        assert_eq!(r.tti, 123_456);
    }

    #[test]
    fn full_report_wire_size_is_representative() {
        // The Fig. 7a regime: ~100 Mb/s at 50 UEs with per-TTI reports
        // means ~250 B/UE. A full report must land in the 130..350 byte
        // band for the experiment to be meaningful.
        let rep = UeReport::from_stats(
            &sample_stats(),
            flexran_types::ids::CellId(0),
            ReportFlags::ALL,
        );
        let mut w = WireWriter::new();
        rep.encode(&mut w);
        let sz = w.len();
        assert!(
            (180..=350).contains(&sz),
            "full UE report is {sz} bytes on the wire"
        );
    }

    #[test]
    fn flags_gate_report_contents() {
        let s = sample_stats();
        let cqi_only = UeReport::from_stats(&s, flexran_types::ids::CellId(0), ReportFlags::CQI);
        assert_eq!(cqi_only.wideband_cqi, 11);
        assert!(cqi_only.rlc.is_empty());
        assert_eq!(cqi_only.harq_tx, 0);
        let rlc_only = UeReport::from_stats(&s, flexran_types::ids::CellId(0), ReportFlags::RLC);
        assert_eq!(rlc_only.wideband_cqi, 0);
        assert_eq!(rlc_only.rlc.len(), 2);
        assert_eq!(rlc_only.rlc[1].tx_queue_bytes, 12_345);
        // Smaller flag set → smaller wire size.
        let mut w_full = WireWriter::new();
        UeReport::from_stats(&s, flexran_types::ids::CellId(0), ReportFlags::ALL)
            .encode(&mut w_full);
        let mut w_cqi = WireWriter::new();
        cqi_only.encode(&mut w_cqi);
        assert!(w_cqi.len() < w_full.len());
    }

    #[test]
    fn request_roundtrip_all_types() {
        for rt in [
            ReportType::OneOff,
            ReportType::Periodic { period: 2 },
            ReportType::Triggered,
        ] {
            let msg = FlexranMessage::StatsRequest(StatsRequest {
                config: ReportConfig {
                    report_type: rt,
                    flags: ReportFlags::ALL,
                },
            });
            let bytes = msg.encode(Header::default());
            let (_, got) = FlexranMessage::decode(&bytes).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn flag_algebra() {
        let f = ReportFlags::CQI.union(ReportFlags::BSR);
        assert!(f.contains(ReportFlags::CQI));
        assert!(f.contains(ReportFlags::BSR));
        assert!(!f.contains(ReportFlags::RLC));
        assert!(ReportFlags::ALL.contains(f));
    }
}
