//! Event-trigger messages (asynchronous notifications) and the per-TTI
//! subframe synchronization trigger.
//!
//! The [`SubframeTrigger`] is the "master-agent sync" traffic of Fig. 7a:
//! when a centralized scheduler works at TTI granularity the agent reports
//! its current subframe every TTI so the master knows where the air
//! interface is (modulo half the control-channel RTT — the staleness the
//! schedule-ahead parameter must cover, §5.3).

use flexran_types::ids::EnbId;
use flexran_types::Result;

use crate::wire::{WireReader, WireWriter};

/// Per-TTI synchronization from agent to master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SubframeTrigger {
    pub enb_id: EnbId,
    pub sfn: u16,
    pub sf: u8,
    /// Absolute TTI (monotonic; lets the master avoid hyperperiod
    /// ambiguity).
    pub tti: u64,
}

impl SubframeTrigger {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        // SFN and subframe packed as in the OAI agent (sfn*16 + sf).
        w.uint(2, (self.sfn as u64) << 4 | self.sf as u64);
        w.uint(3, self.tti);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<SubframeTrigger> {
        let mut m = SubframeTrigger::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => {
                    let packed = v.as_u64()?;
                    m.sfn = (packed >> 4) as u16;
                    m.sf = (packed & 0xF) as u8;
                }
                3 => m.tti = v.as_u64()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Kinds of data-plane events carried to the master.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EventKind {
    #[default]
    RachAttempt,
    UeAttached,
    AttachFailed,
    UeDetached,
    SchedulingRequest,
    MeasurementReport,
    HandoverExecuted,
    DecisionMissedDeadline,
    /// Synthesized by the master's liveness tracker when an agent session
    /// stops responding; the agent's RIB subtree is marked stale.
    AgentDown,
    /// Synthesized when a lost agent session resumes (rejoin complete).
    AgentUp,
}

impl EventKind {
    fn to_u64(self) -> u64 {
        match self {
            EventKind::RachAttempt => 0,
            EventKind::UeAttached => 1,
            EventKind::AttachFailed => 2,
            EventKind::UeDetached => 3,
            EventKind::SchedulingRequest => 4,
            EventKind::MeasurementReport => 5,
            EventKind::HandoverExecuted => 6,
            EventKind::DecisionMissedDeadline => 7,
            EventKind::AgentDown => 8,
            EventKind::AgentUp => 9,
        }
    }

    fn from_u64(v: u64) -> EventKind {
        match v {
            1 => EventKind::UeAttached,
            2 => EventKind::AttachFailed,
            3 => EventKind::UeDetached,
            4 => EventKind::SchedulingRequest,
            5 => EventKind::MeasurementReport,
            6 => EventKind::HandoverExecuted,
            7 => EventKind::DecisionMissedDeadline,
            8 => EventKind::AgentDown,
            9 => EventKind::AgentUp,
            _ => EventKind::RachAttempt,
        }
    }
}

/// An event notification (agent → master).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct EventNotification {
    pub enb_id: EnbId,
    pub kind: EventKind,
    pub cell: u16,
    pub rnti: u16,
    /// Simulation-global UE tag, when known.
    pub ue_tag: u32,
    pub tti: u64,
    /// Stage name for attach failures ("rar", "setup").
    pub stage: String,
    /// Serving RSRP in deci-dBm for measurement reports.
    pub serving_rsrp_decidbm: i64,
    /// Neighbour measurements: `(site key, RSRP deci-dBm + 2000 offset)`
    /// interleaved in one packed array.
    pub neighbours_packed: Vec<u64>,
}

impl EventNotification {
    /// Convert a data-plane event into its wire form.
    pub fn from_enb_event(enb_id: EnbId, ev: &flexran_stack::events::EnbEvent) -> Self {
        use flexran_stack::events::EnbEvent as E;
        let mut n = EventNotification {
            enb_id,
            tti: ev.at().0,
            ..EventNotification::default()
        };
        match ev {
            E::RachAttempt { cell, rnti, ue, .. } => {
                n.kind = EventKind::RachAttempt;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.ue_tag = ue.0;
            }
            E::UeAttached { cell, rnti, ue, .. } => {
                n.kind = EventKind::UeAttached;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.ue_tag = ue.0;
            }
            E::AttachFailed {
                cell,
                rnti,
                ue,
                stage,
                ..
            } => {
                n.kind = EventKind::AttachFailed;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.ue_tag = ue.0;
                n.stage = (*stage).to_string();
            }
            E::UeDetached { cell, rnti, ue, .. } => {
                n.kind = EventKind::UeDetached;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.ue_tag = ue.0;
            }
            E::SchedulingRequest { cell, rnti, .. } => {
                n.kind = EventKind::SchedulingRequest;
                n.cell = cell.0;
                n.rnti = rnti.0;
            }
            E::MeasurementReport {
                cell,
                rnti,
                serving_rsrp_dbm,
                neighbours,
                ..
            } => {
                n.kind = EventKind::MeasurementReport;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.serving_rsrp_decidbm = (serving_rsrp_dbm * 10.0) as i64;
                for (site, rsrp) in neighbours {
                    n.neighbours_packed.push(*site as u64);
                    n.neighbours_packed
                        .push(((rsrp * 10.0) as i64 + 2000).max(0) as u64);
                }
            }
            E::HandoverExecuted { cell, rnti, ue, .. } => {
                n.kind = EventKind::HandoverExecuted;
                n.cell = cell.0;
                n.rnti = rnti.0;
                n.ue_tag = ue.0;
            }
            E::DecisionMissedDeadline { cell, .. } => {
                n.kind = EventKind::DecisionMissedDeadline;
                n.cell = cell.0;
            }
        }
        n
    }

    /// Neighbour list decoded back into `(site, rsrp_dbm)` pairs.
    pub fn neighbours(&self) -> Vec<(u32, f64)> {
        self.neighbours_packed
            .chunks_exact(2)
            // lint:allow(panic) — `chunks_exact(2)` yields 2-long chunks.
            .map(|c| (c[0] as u32, (c[1] as i64 - 2000) as f64 / 10.0))
            .collect()
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.kind.to_u64());
        w.uint(3, self.cell as u64 + 1);
        w.uint(4, self.rnti as u64);
        w.uint(5, self.ue_tag as u64 + 1);
        w.uint(6, self.tti);
        w.string(7, &self.stage);
        w.sint(8, self.serving_rsrp_decidbm);
        w.packed_uints(9, &self.neighbours_packed);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<EventNotification> {
        let mut m = EventNotification::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.kind = EventKind::from_u64(v.as_u64()?),
                3 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                4 => m.rnti = v.as_u64()? as u16,
                5 => m.ue_tag = (v.as_u64()?.saturating_sub(1)) as u32,
                6 => m.tti = v.as_u64()?,
                7 => m.stage = v.as_str()?.to_string(),
                8 => m.serving_rsrp_decidbm = v.as_i64_zigzag()?,
                9 => m.neighbours_packed = v.as_packed_uints()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{FlexranMessage, Header};
    use flexran_stack::events::EnbEvent;
    use flexran_types::ids::{CellId, Rnti, UeId};
    use flexran_types::time::Tti;

    #[test]
    fn subframe_trigger_roundtrip() {
        let msg = FlexranMessage::SubframeTrigger(SubframeTrigger {
            enb_id: EnbId(3),
            sfn: 1023,
            sf: 9,
            tti: 999_999,
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn event_conversion_roundtrip() {
        let ev = EnbEvent::UeAttached {
            cell: CellId(0),
            rnti: Rnti(0x104),
            ue: UeId(4),
            at: Tti(77),
        };
        let n = EventNotification::from_enb_event(EnbId(1), &ev);
        let msg = FlexranMessage::EventNotification(n.clone());
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        let FlexranMessage::EventNotification(d) = got else {
            panic!("wrong variant");
        };
        assert_eq!(d, n);
        assert_eq!(d.kind, EventKind::UeAttached);
        assert_eq!(d.tti, 77);
        assert_eq!(d.rnti, 0x104);
    }

    #[test]
    fn measurement_report_neighbours_roundtrip() {
        let ev = EnbEvent::MeasurementReport {
            cell: CellId(0),
            rnti: Rnti(0x104),
            at: Tti(5),
            serving_rsrp_dbm: -91.5,
            neighbours: vec![(2, -95.3), (3, -101.0)],
        };
        let n = EventNotification::from_enb_event(EnbId(1), &ev);
        let msg = FlexranMessage::EventNotification(n);
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        let FlexranMessage::EventNotification(d) = got else {
            panic!("wrong variant");
        };
        assert_eq!(d.serving_rsrp_decidbm, -915);
        let neigh = d.neighbours();
        assert_eq!(neigh.len(), 2);
        assert_eq!(neigh[0].0, 2);
        assert!((neigh[0].1 - (-95.3)).abs() < 0.11);
    }

    #[test]
    fn attach_failure_stage_carried() {
        let ev = EnbEvent::AttachFailed {
            cell: CellId(1),
            rnti: Rnti(0x105),
            ue: UeId(9),
            at: Tti(50),
            stage: "rar",
        };
        let n = EventNotification::from_enb_event(EnbId(1), &ev);
        assert_eq!(n.stage, "rar");
        assert_eq!(n.cell, 1);
    }
}
