//! Control-delegation messages: VSF updation and policy reconfiguration
//! (paper §4.3.1).
//!
//! A [`VsfPush`] carries new behaviour for one `(control module, VSF)`
//! pair. In the paper the payload is a shared library compiled for the
//! agent's architecture; here the artifact is either a *registry
//! reference* (modelling a signed, pre-compiled library the agent resolves
//! locally — see `DESIGN.md` substitutions) or a *DSL program* the agent
//! compiles with its built-in scheduling-policy interpreter (realizing the
//! paper's §7.3 future-work item of a technology-agnostic VSF language).
//!
//! A [`PolicyReconfiguration`] carries the YAML-subset document of Fig. 3:
//! per control module, a `behavior:` (which cached VSF implementation to
//! link to the CMI call) and `parameters:` (runtime-tunable values of the
//! active VSF).

use flexran_types::Result;

use crate::wire::{WireReader, WireWriter};

/// The payload of a VSF push.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VsfArtifact {
    /// Resolve `key` against the agent's registry of pre-compiled,
    /// signature-checked implementations.
    Registry { key: String },
    /// Compile `source` with the agent's scheduling-policy DSL.
    Dsl { source: String },
}

impl Default for VsfArtifact {
    fn default() -> Self {
        VsfArtifact::Registry { key: String::new() }
    }
}

/// Push a new VSF implementation into an agent-side control module's
/// cache. The implementation becomes *available*; activating it requires
/// a policy reconfiguration (`behavior:`) — exactly the paper's two-step
/// mechanism that lets the master pre-stage implementations and swap them
/// at runtime with ~100 ns latency.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct VsfPush {
    /// Control module name (`"mac"`, `"rrc"`, `"pdcp"`).
    pub module: String,
    /// VSF slot within the module (e.g. `"dl_ue_scheduler"`).
    pub vsf: String,
    /// Cache name under which the implementation is stored.
    pub name: String,
    pub artifact: VsfArtifact,
    /// Detached signature over the artifact (the trusted-authority code
    /// signing of paper §4.3.1; agents reject pushes failing verification).
    pub signature: Vec<u8>,
}

impl VsfPush {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.string(1, &self.module);
        w.string(2, &self.vsf);
        w.string(3, &self.name);
        match &self.artifact {
            VsfArtifact::Registry { key } => {
                w.uint(4, 0);
                w.string(5, key);
            }
            VsfArtifact::Dsl { source } => {
                w.uint(4, 1);
                w.string(6, source);
            }
        }
        w.bytes_field(7, &self.signature);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<VsfPush> {
        let mut m = VsfPush::default();
        let mut kind = 0u64;
        let mut key = String::new();
        let mut source = String::new();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.module = v.as_str()?.to_string(),
                2 => m.vsf = v.as_str()?.to_string(),
                3 => m.name = v.as_str()?.to_string(),
                4 => kind = v.as_u64()?,
                5 => key = v.as_str()?.to_string(),
                6 => source = v.as_str()?.to_string(),
                7 => m.signature = v.as_bytes()?.to_vec(),
                _ => {}
            }
        }
        m.artifact = if kind == 1 {
            VsfArtifact::Dsl { source }
        } else {
            VsfArtifact::Registry { key }
        };
        Ok(m)
    }
}

/// A policy reconfiguration document (YAML subset, Fig. 3 of the paper).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct PolicyReconfiguration {
    pub yaml: String,
}

impl PolicyReconfiguration {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.string(1, &self.yaml);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<PolicyReconfiguration> {
        let mut m = PolicyReconfiguration::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            if f == 1 {
                m.yaml = v.as_str()?.to_string();
            }
        }
        Ok(m)
    }
}

/// Acknowledgement for a delegation operation.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DelegationAck {
    /// xid of the request being acknowledged.
    pub xid: u32,
    pub ok: bool,
    pub error: String,
}

impl DelegationAck {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.xid as u64);
        w.uint(2, self.ok as u64);
        w.string(3, &self.error);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<DelegationAck> {
        let mut m = DelegationAck::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.xid = v.as_u32()?,
                2 => m.ok = v.as_u64()? != 0,
                3 => m.error = v.as_str()?.to_string(),
                _ => {}
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{FlexranMessage, Header};

    #[test]
    fn registry_push_roundtrip() {
        let msg = FlexranMessage::VsfPush(VsfPush {
            module: "mac".into(),
            vsf: "dl_ue_scheduler".into(),
            name: "local-pf".into(),
            artifact: VsfArtifact::Registry {
                key: "proportional-fair".into(),
            },
            signature: vec![0xAB; 32],
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::with_xid(7))).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn dsl_push_roundtrip() {
        let msg = FlexranMessage::VsfPush(VsfPush {
            module: "mac".into(),
            vsf: "dl_ue_scheduler".into(),
            name: "weighted".into(),
            artifact: VsfArtifact::Dsl {
                source: "priority = rate / avg_rate ^ 0.5".into(),
            },
            signature: vec![1, 2, 3],
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn policy_reconfiguration_roundtrip() {
        let yaml = "mac:\n  dl_ue_scheduler:\n    behavior: local-pf\n    parameters:\n      fairness_exponent: 0.7\n";
        let msg =
            FlexranMessage::PolicyReconfiguration(PolicyReconfiguration { yaml: yaml.into() });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        let FlexranMessage::PolicyReconfiguration(p) = got else {
            panic!("wrong variant");
        };
        assert_eq!(p.yaml, yaml);
    }

    #[test]
    fn ack_roundtrip_including_failure() {
        let msg = FlexranMessage::DelegationAck(DelegationAck {
            xid: 9,
            ok: false,
            error: "signature rejected".into(),
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        assert_eq!(got, msg);
    }
}
