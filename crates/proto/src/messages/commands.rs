//! Command messages (the *Commands* call type of the Agent API): apply
//! control decisions — scheduling, handover, DRX, ABS patterns.
//!
//! [`DlSchedulingCommand`] is the message a centralized scheduler at the
//! master sends per cell × subframe; its on-wire size drives the
//! master→agent overhead of Fig. 7b, so the DCI carries the full set of
//! fields a real DCI format 1A conveys (TPC, DAI, aggregation level, VRB
//! format, NDI, HARQ pid) even though the data-plane model only consumes
//! RNTI/PRBs/MCS.

use flexran_phy::link_adaptation::Mcs;
use flexran_types::ids::{CellId, EnbId, Rnti};
use flexran_types::time::Tti;
use flexran_types::Result;

use crate::wire::{WireReader, WireWriter};

/// One downlink assignment on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DciPb {
    pub rnti: u16,
    pub n_prb: u8,
    pub mcs: u8,
    pub harq_pid: u8,
    pub ndi: bool,
    /// Transmit power control command (0..=3).
    pub tpc: u8,
    /// Downlink assignment index (0..=3).
    pub dai: u8,
    /// Resource-allocation format (0 = type 0 bitmap, 1 = type 2 compact).
    pub vrb_format: u8,
    /// PDCCH aggregation level (1/2/4/8).
    pub aggregation_level: u8,
    /// Precomputed transport block size in bits (lets the agent apply the
    /// decision without a table lookup).
    pub tbs_bits: u32,
    /// Resource-block bitmap for allocation type 0 (fixed32; enough for
    /// the 17 RBG bits of a 50-PRB cell).
    pub rb_bitmap: u32,
}

impl DciPb {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.rnti as u64);
        w.uint(2, self.n_prb as u64);
        w.uint(3, self.mcs as u64);
        w.uint(4, self.harq_pid as u64 + 1);
        w.uint(5, self.ndi as u64);
        w.uint(6, self.tpc as u64);
        w.uint(7, self.dai as u64);
        w.uint(8, self.vrb_format as u64);
        w.uint(9, self.aggregation_level as u64);
        w.uint(10, self.tbs_bits as u64);
        w.fixed32(11, self.rb_bitmap);
    }

    fn decode(data: &[u8]) -> Result<DciPb> {
        let mut m = DciPb::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.rnti = v.as_u64()? as u16,
                2 => m.n_prb = v.as_u64()? as u8,
                3 => m.mcs = v.as_u64()? as u8,
                4 => m.harq_pid = (v.as_u64()?.saturating_sub(1)) as u8,
                5 => m.ndi = v.as_u64()? != 0,
                6 => m.tpc = v.as_u64()? as u8,
                7 => m.dai = v.as_u64()? as u8,
                8 => m.vrb_format = v.as_u64()? as u8,
                9 => m.aggregation_level = v.as_u64()? as u8,
                10 => m.tbs_bits = v.as_u32()?,
                11 => m.rb_bitmap = v.as_u32()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// A downlink scheduling decision for one cell × subframe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct DlSchedulingCommand {
    pub enb_id: EnbId,
    pub cell: u16,
    /// Target subframe as an absolute TTI.
    pub target_tti: u64,
    pub dcis: Vec<DciPb>,
}

impl DlSchedulingCommand {
    /// Convert a data-plane decision into its wire form.
    pub fn from_decision(enb_id: EnbId, d: &flexran_stack::mac::dci::DlSchedulingDecision) -> Self {
        let dcis = d
            .dcis
            .iter()
            .map(|dci| DciPb {
                rnti: dci.rnti.0,
                n_prb: dci.n_prb,
                mcs: dci.mcs.0,
                harq_pid: 0,
                ndi: true,
                tpc: 1,
                dai: 0,
                vrb_format: 0,
                aggregation_level: 4,
                tbs_bits: flexran_phy::tables::tbs_bits(
                    flexran_phy::tables::itbs_for_mcs(dci.mcs.0),
                    dci.n_prb,
                ),
                rb_bitmap: (1u32 << (dci.n_prb.min(17) as u32)) - 1,
            })
            .collect();
        DlSchedulingCommand {
            enb_id,
            cell: d.cell.0,
            target_tti: d.target.0,
            dcis,
        }
    }

    /// Convert back into the data-plane decision the agent applies.
    pub fn to_decision(&self) -> flexran_stack::mac::dci::DlSchedulingDecision {
        flexran_stack::mac::dci::DlSchedulingDecision {
            cell: CellId(self.cell),
            target: Tti(self.target_tti),
            dcis: self
                .dcis
                .iter()
                .map(|d| flexran_stack::mac::dci::DlDci {
                    rnti: Rnti(d.rnti),
                    n_prb: d.n_prb,
                    mcs: Mcs(d.mcs.min(28)),
                })
                .collect(),
        }
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.cell as u64 + 1);
        w.uint(3, self.target_tti);
        for d in &self.dcis {
            w.message(4, |m| d.encode(m));
        }
    }

    pub(crate) fn decode(data: &[u8]) -> Result<DlSchedulingCommand> {
        let mut m = DlSchedulingCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                3 => m.target_tti = v.as_u64()?,
                4 => m.dcis.push(DciPb::decode(v.as_bytes()?)?),
                _ => {}
            }
        }
        Ok(m)
    }
}

/// One uplink grant on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct UlGrantPb {
    pub rnti: u16,
    pub n_prb: u8,
    pub mcs: u8,
    pub tpc: u8,
    pub cyclic_shift: u8,
    pub hopping: bool,
}

impl UlGrantPb {
    fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.rnti as u64);
        w.uint(2, self.n_prb as u64);
        w.uint(3, self.mcs as u64);
        w.uint(4, self.tpc as u64);
        w.uint(5, self.cyclic_shift as u64);
        w.uint(6, self.hopping as u64);
    }

    fn decode(data: &[u8]) -> Result<UlGrantPb> {
        let mut m = UlGrantPb::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.rnti = v.as_u64()? as u16,
                2 => m.n_prb = v.as_u64()? as u8,
                3 => m.mcs = v.as_u64()? as u8,
                4 => m.tpc = v.as_u64()? as u8,
                5 => m.cyclic_shift = v.as_u64()? as u8,
                6 => m.hopping = v.as_u64()? != 0,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// An uplink scheduling decision for one cell × subframe.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct UlSchedulingCommand {
    pub enb_id: EnbId,
    pub cell: u16,
    pub target_tti: u64,
    pub grants: Vec<UlGrantPb>,
}

impl UlSchedulingCommand {
    pub fn from_decision(enb_id: EnbId, d: &flexran_stack::mac::dci::UlSchedulingDecision) -> Self {
        UlSchedulingCommand {
            enb_id,
            cell: d.cell.0,
            target_tti: d.target.0,
            grants: d
                .grants
                .iter()
                .map(|g| UlGrantPb {
                    rnti: g.rnti.0,
                    n_prb: g.n_prb,
                    mcs: g.mcs.0,
                    tpc: 1,
                    cyclic_shift: 0,
                    hopping: false,
                })
                .collect(),
        }
    }

    pub fn to_decision(&self) -> flexran_stack::mac::dci::UlSchedulingDecision {
        flexran_stack::mac::dci::UlSchedulingDecision {
            cell: CellId(self.cell),
            target: Tti(self.target_tti),
            grants: self
                .grants
                .iter()
                .map(|g| flexran_stack::mac::dci::UlGrant {
                    rnti: Rnti(g.rnti),
                    n_prb: g.n_prb,
                    mcs: Mcs(g.mcs.min(28)),
                })
                .collect(),
        }
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.enb_id.0 as u64);
        w.uint(2, self.cell as u64 + 1);
        w.uint(3, self.target_tti);
        for g in &self.grants {
            w.message(4, |m| g.encode(m));
        }
    }

    pub(crate) fn decode(data: &[u8]) -> Result<UlSchedulingCommand> {
        let mut m = UlSchedulingCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.enb_id = EnbId(v.as_u32()?),
                2 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                3 => m.target_tti = v.as_u64()?,
                4 => m.grants.push(UlGrantPb::decode(v.as_bytes()?)?),
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Handover initiation command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HandoverCommand {
    pub cell: u16,
    pub rnti: u16,
    pub target_enb: u32,
    pub target_cell: u16,
}

impl HandoverCommand {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell as u64 + 1);
        w.uint(2, self.rnti as u64);
        w.uint(3, self.target_enb as u64);
        w.uint(4, self.target_cell as u64 + 1);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<HandoverCommand> {
        let mut m = HandoverCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.rnti = v.as_u64()? as u16,
                3 => m.target_enb = v.as_u32()?,
                4 => m.target_cell = (v.as_u64()?.saturating_sub(1)) as u16,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Secondary-component-carrier (de)activation command (carrier
/// aggregation — paper Table 1: "(de)activating component carriers").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ScellCommand {
    /// The UE's primary cell.
    pub cell: u16,
    pub rnti: u16,
    /// The secondary cell to (de)activate.
    pub scell: u16,
    pub activate: bool,
}

impl ScellCommand {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell as u64 + 1);
        w.uint(2, self.rnti as u64);
        w.uint(3, self.scell as u64 + 1);
        w.uint(4, self.activate as u64);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<ScellCommand> {
        let mut m = ScellCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.rnti = v.as_u64()? as u16,
                3 => m.scell = (v.as_u64()?.saturating_sub(1)) as u16,
                4 => m.activate = v.as_u64()? != 0,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// DRX configuration command.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct DrxCommand {
    pub cell: u16,
    pub rnti: u16,
    pub cycle_ttis: u32,
    pub on_duration_ttis: u32,
}

impl DrxCommand {
    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell as u64 + 1);
        w.uint(2, self.rnti as u64);
        w.uint(3, self.cycle_ttis as u64);
        w.uint(4, self.on_duration_ttis as u64);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<DrxCommand> {
        let mut m = DrxCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.rnti = v.as_u64()? as u16,
                3 => m.cycle_ttis = v.as_u32()?,
                4 => m.on_duration_ttis = v.as_u32()?,
                _ => {}
            }
        }
        Ok(m)
    }
}

/// Almost-blank-subframe pattern command (eICIC).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct AbsCommand {
    pub cell: u16,
    /// 40-subframe pattern packed LSB-first into 5 bytes; empty = clear.
    pub pattern: Vec<u8>,
}

impl AbsCommand {
    /// Build from the data plane's pattern representation.
    pub fn from_pattern(cell: CellId, pattern: Option<[bool; 40]>) -> Self {
        let bytes = match pattern {
            None => Vec::new(),
            Some(p) => {
                let mut b = vec![0u8; 5];
                for (i, muted) in p.iter().enumerate() {
                    if *muted {
                        // lint:allow(panic) — `i < 40` so `i / 8 < 5 == b.len()`.
                        b[i / 8] |= 1 << (i % 8);
                    }
                }
                b
            }
        };
        AbsCommand {
            cell: cell.0,
            pattern: bytes,
        }
    }

    /// Unpack into the data plane's representation.
    pub fn to_pattern(&self) -> Option<[bool; 40]> {
        if self.pattern.is_empty() {
            return None;
        }
        let mut p = [false; 40];
        for (i, slot) in p.iter_mut().enumerate() {
            let byte = self.pattern.get(i / 8).copied().unwrap_or(0);
            *slot = byte & (1 << (i % 8)) != 0;
        }
        Some(p)
    }

    pub(crate) fn encode(&self, w: &mut WireWriter) {
        w.uint(1, self.cell as u64 + 1);
        w.bytes_field(2, &self.pattern);
    }

    pub(crate) fn decode(data: &[u8]) -> Result<AbsCommand> {
        let mut m = AbsCommand::default();
        let mut r = WireReader::new(data);
        while let Some((f, v)) = r.next_field()? {
            match f {
                1 => m.cell = (v.as_u64()?.saturating_sub(1)) as u16,
                2 => m.pattern = v.as_bytes()?.to_vec(),
                _ => {}
            }
        }
        Ok(m)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::messages::{FlexranMessage, Header};
    use flexran_stack::mac::dci::{DlDci, DlSchedulingDecision};

    fn sample_decision() -> DlSchedulingDecision {
        DlSchedulingDecision {
            cell: CellId(0),
            target: Tti(1234),
            dcis: vec![
                DlDci {
                    rnti: Rnti(0x100),
                    n_prb: 25,
                    mcs: Mcs(15),
                },
                DlDci {
                    rnti: Rnti(0x101),
                    n_prb: 25,
                    mcs: Mcs(28),
                },
            ],
        }
    }

    #[test]
    fn dl_command_roundtrips_through_decision() {
        let d = sample_decision();
        let cmd = DlSchedulingCommand::from_decision(EnbId(1), &d);
        let msg = FlexranMessage::DlSchedulingCommand(cmd.clone());
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::DlSchedulingCommand(c) = got else {
            panic!("wrong variant");
        };
        assert_eq!(c, cmd);
        assert_eq!(c.to_decision(), d);
    }

    #[test]
    fn dci_wire_size_is_representative() {
        // Fig. 7b regime: <4 Mb/s at ~10 DCIs/TTI → ~30-50 B per DCI.
        let cmd = DlSchedulingCommand::from_decision(EnbId(1), &sample_decision());
        let mut w = WireWriter::new();
        cmd.encode(&mut w);
        let per_dci = (w.len() as f64 - 8.0) / 2.0;
        assert!(
            (20.0..=60.0).contains(&per_dci),
            "per-DCI wire cost {per_dci} bytes"
        );
    }

    #[test]
    fn ul_command_roundtrip() {
        let d = flexran_stack::mac::dci::UlSchedulingDecision {
            cell: CellId(0),
            target: Tti(99),
            grants: vec![flexran_stack::mac::dci::UlGrant {
                rnti: Rnti(0x200),
                n_prb: 24,
                mcs: Mcs(16),
            }],
        };
        let cmd = UlSchedulingCommand::from_decision(EnbId(2), &d);
        let msg = FlexranMessage::UlSchedulingCommand(cmd);
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::UlSchedulingCommand(c) = got else {
            panic!("wrong variant");
        };
        assert_eq!(c.to_decision(), d);
    }

    #[test]
    fn abs_pattern_roundtrip() {
        let mut p = [false; 40];
        p[0] = true;
        p[7] = true;
        p[8] = true;
        p[39] = true;
        let cmd = AbsCommand::from_pattern(CellId(1), Some(p));
        let msg = FlexranMessage::AbsCommand(cmd);
        let bytes = msg.encode(Header::default());
        let (_, got) = FlexranMessage::decode(&bytes).unwrap();
        let FlexranMessage::AbsCommand(c) = got else {
            panic!("wrong variant");
        };
        assert_eq!(c.to_pattern(), Some(p));
        // Clear.
        let clear = AbsCommand::from_pattern(CellId(1), None);
        assert_eq!(clear.to_pattern(), None);
    }

    #[test]
    fn handover_and_drx_roundtrip() {
        let msg = FlexranMessage::HandoverCommand(HandoverCommand {
            cell: 0,
            rnti: 0x150,
            target_enb: 2,
            target_cell: 1,
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        assert_eq!(got, msg);

        let msg = FlexranMessage::DrxCommand(DrxCommand {
            cell: 0,
            rnti: 0x150,
            cycle_ttis: 40,
            on_duration_ttis: 8,
        });
        let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
        assert_eq!(got, msg);
    }

    #[test]
    fn scell_roundtrip() {
        for activate in [true, false] {
            let msg = FlexranMessage::ScellCommand(ScellCommand {
                cell: 0,
                rnti: 0x120,
                scell: 1,
                activate,
            });
            let (_, got) = FlexranMessage::decode(&msg.encode(Header::default())).unwrap();
            assert_eq!(got, msg);
        }
    }

    #[test]
    fn mcs_clamped_on_conversion() {
        let cmd = DlSchedulingCommand {
            enb_id: EnbId(1),
            cell: 0,
            target_tti: 1,
            dcis: vec![DciPb {
                rnti: 0x100,
                n_prb: 10,
                mcs: 99, // corrupt
                ..DciPb::default()
            }],
        };
        assert_eq!(cmd.to_decision().dcis[0].mcs, Mcs(28));
    }
}
