//! Protocol Buffers wire-format primitives, implemented from scratch.
//!
//! The paper's FlexRAN protocol serializes its messages with Google
//! Protocol Buffers ("an optimized platform-neutral serialization
//! mechanism"). This module reimplements the *wire format* — base-128
//! varints, ZigZag signed encoding, tag/wire-type framing, and
//! length-delimited nesting — so that message sizes on the wire match what
//! a protobuf implementation would produce; the signalling-overhead
//! experiment (Fig. 7) measures exactly these sizes.
//!
//! Unknown fields are skipped on decode (forward compatibility, the same
//! guarantee protobuf gives — and the property the paper leans on for
//! protocol evolvability).

use bytes::{BufMut, Bytes, BytesMut};
use flexran_types::{FlexError, Result};

/// Protobuf wire types.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WireType {
    Varint = 0,
    Fixed64 = 1,
    LengthDelimited = 2,
    Fixed32 = 5,
}

impl WireType {
    fn from_bits(bits: u64) -> Result<WireType> {
        Ok(match bits {
            0 => WireType::Varint,
            1 => WireType::Fixed64,
            2 => WireType::LengthDelimited,
            5 => WireType::Fixed32,
            other => {
                return Err(FlexError::Codec(format!("unsupported wire type {other}")));
            }
        })
    }
}

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) lookup table,
/// built at compile time.
const CRC32_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        // lint:allow(panic): i < 256 by the loop bound, at compile time.
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC-32 (IEEE) of `data`. Used as the envelope integrity check: unlike
/// a plain sum, CRC-32 is guaranteed to detect every single-bit error and
/// every burst error up to 32 bits — the failure modes a corrupted
/// control channel actually produces.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in data {
        // lint:allow(panic): the index is masked to 0xFF, table len 256.
        crc = (crc >> 8) ^ CRC32_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Append a base-128 varint.
pub fn put_uvarint(buf: &mut BytesMut, mut v: u64) {
    loop {
        let byte = (v & 0x7F) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Read a base-128 varint, returning `(value, bytes_consumed)`.
pub fn get_uvarint(data: &[u8]) -> Result<(u64, usize)> {
    let mut value = 0u64;
    let mut shift = 0u32;
    for (i, byte) in data.iter().enumerate() {
        if shift >= 64 {
            return Err(FlexError::Codec("varint longer than 10 bytes".into()));
        }
        value |= ((byte & 0x7F) as u64) << shift;
        if byte & 0x80 == 0 {
            // Reject non-canonical over-long encodings of small values at
            // the 10th byte (would silently truncate).
            if i == 9 && *byte > 1 {
                return Err(FlexError::Codec("varint overflows u64".into()));
            }
            return Ok((value, i + 1));
        }
        shift += 7;
    }
    Err(FlexError::Codec("truncated varint".into()))
}

/// Split a varint off the front of `data`, returning `(value, rest)` —
/// the panic-free slicing primitive every decode path below builds on.
pub fn split_uvarint(data: &[u8]) -> Result<(u64, &[u8])> {
    let (v, n) = get_uvarint(data)?;
    // `get_uvarint` consumed `n <= data.len()` bytes, so the tail always
    // exists; the `unwrap_or` is unreachable but keeps this panic-free.
    Ok((v, data.get(n..).unwrap_or(&[])))
}

/// ZigZag-encode a signed value (protobuf `sint64`).
pub fn zigzag_encode(v: i64) -> u64 {
    ((v << 1) ^ (v >> 63)) as u64
}

/// ZigZag-decode.
pub fn zigzag_decode(v: u64) -> i64 {
    ((v >> 1) as i64) ^ -((v & 1) as i64)
}

/// Number of bytes `v` occupies as a varint (size estimation for tests
/// and overhead accounting).
pub fn uvarint_len(v: u64) -> usize {
    if v == 0 {
        1
    } else {
        (64 - v.leading_zeros() as usize).div_ceil(7)
    }
}

/// Streaming writer producing protobuf-compatible bytes.
///
/// Fields with default values (0, empty) are *skipped*, exactly as
/// protobuf serializers do — this is what gives the FlexRAN protocol its
/// compact statistics reports.
#[derive(Debug, Default)]
pub struct WireWriter {
    buf: BytesMut,
}

impl WireWriter {
    pub fn new() -> Self {
        WireWriter {
            buf: BytesMut::with_capacity(64),
        }
    }

    fn tag(&mut self, field: u32, wt: WireType) {
        put_uvarint(&mut self.buf, ((field as u64) << 3) | wt as u64);
    }

    /// `uint32`/`uint64`/`bool`/enum field (skipped when 0).
    pub fn uint(&mut self, field: u32, v: u64) {
        if v == 0 {
            return;
        }
        self.tag(field, WireType::Varint);
        put_uvarint(&mut self.buf, v);
    }

    /// Like [`WireWriter::uint`] but always emitted (for fields where 0 is
    /// meaningful and must round-trip inside packed parallel arrays).
    pub fn uint_always(&mut self, field: u32, v: u64) {
        self.tag(field, WireType::Varint);
        put_uvarint(&mut self.buf, v);
    }

    /// `sint64` field, ZigZag encoded (skipped when 0).
    pub fn sint(&mut self, field: u32, v: i64) {
        if v == 0 {
            return;
        }
        self.tag(field, WireType::Varint);
        put_uvarint(&mut self.buf, zigzag_encode(v));
    }

    /// `double` field (skipped when exactly 0.0).
    pub fn double(&mut self, field: u32, v: f64) {
        if v == 0.0 {
            return;
        }
        self.tag(field, WireType::Fixed64);
        self.buf.put_u64_le(v.to_bits());
    }

    /// `fixed32` field (skipped when 0).
    pub fn fixed32(&mut self, field: u32, v: u32) {
        if v == 0 {
            return;
        }
        self.tag(field, WireType::Fixed32);
        self.buf.put_u32_le(v);
    }

    /// Like [`WireWriter::fixed32`] but always emitted — for fields whose
    /// presence is structural (the envelope integrity trailer must occupy
    /// its five bytes even when the checksum happens to be 0).
    pub fn fixed32_always(&mut self, field: u32, v: u32) {
        self.tag(field, WireType::Fixed32);
        self.buf.put_u32_le(v);
    }

    /// `string` field (skipped when empty).
    pub fn string(&mut self, field: u32, s: &str) {
        if s.is_empty() {
            return;
        }
        self.tag(field, WireType::LengthDelimited);
        put_uvarint(&mut self.buf, s.len() as u64);
        self.buf.put_slice(s.as_bytes());
    }

    /// `bytes` field (skipped when empty).
    pub fn bytes_field(&mut self, field: u32, b: &[u8]) {
        if b.is_empty() {
            return;
        }
        self.tag(field, WireType::LengthDelimited);
        put_uvarint(&mut self.buf, b.len() as u64);
        self.buf.put_slice(b);
    }

    /// `repeated uint` as a packed field (protobuf packed encoding —
    /// what makes per-subband CQI arrays cheap on the wire). The payload
    /// length is summed up front, so no intermediate buffer is needed.
    pub fn packed_uints(&mut self, field: u32, vs: &[u64]) {
        if vs.is_empty() {
            return;
        }
        let payload: usize = vs.iter().map(|v| uvarint_len(*v)).sum();
        self.tag(field, WireType::LengthDelimited);
        put_uvarint(&mut self.buf, payload as u64);
        for v in vs {
            put_uvarint(&mut self.buf, *v);
        }
    }

    /// Nested message field: the closure writes the submessage.
    ///
    /// Encodes in place: the submessage is written directly into this
    /// writer's buffer after a one-byte length placeholder, which is
    /// patched (shifting the payload only when the length needs a
    /// multi-byte varint, i.e. ≥ 128 bytes). No per-submessage
    /// allocation, and the bytes stay canonical protobuf — sizes still
    /// match a real implementation, which Fig. 7 depends on.
    pub fn message<F: FnOnce(&mut WireWriter)>(&mut self, field: u32, f: F) {
        self.tag(field, WireType::LengthDelimited);
        let len_pos = self.buf.len();
        self.buf.put_u8(0); // length placeholder
                            // The closure body is analyzed at its definition site
                            // (closures-as-edges), not through this `FnOnce`. lint:alloc-free-callee
        f(self);
        let payload = self.buf.len() - len_pos - 1;
        let len_bytes = uvarint_len(payload as u64);
        if len_bytes > 1 {
            // Shift the payload right to make room for the longer varint.
            let end = self.buf.len();
            self.buf.resize(end + len_bytes - 1, 0);
            self.buf.copy_within(len_pos + 1..end, len_pos + len_bytes);
        }
        let mut v = payload as u64;
        for slot in self.buf.iter_mut().skip(len_pos).take(len_bytes) {
            let byte = (v & 0x7F) as u8;
            v >>= 7;
            *slot = if v == 0 { byte } else { byte | 0x80 };
        }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The encoded bytes so far (borrowing accessor for pooled writers
    /// that are cleared and reused instead of consumed).
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }

    /// Reset for reuse, keeping the underlying allocation.
    pub fn clear(&mut self) {
        self.buf.clear();
    }

    /// Finish, yielding the encoded bytes.
    pub fn finish(self) -> Bytes {
        self.buf.freeze()
    }
}

/// A decoded field value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum WireValue<'a> {
    Varint(u64),
    Fixed64(u64),
    Bytes(&'a [u8]),
    Fixed32(u32),
}

impl<'a> WireValue<'a> {
    pub fn as_u64(&self) -> Result<u64> {
        match self {
            WireValue::Varint(v) => Ok(*v),
            WireValue::Fixed64(v) => Ok(*v),
            WireValue::Fixed32(v) => Ok(*v as u64),
            WireValue::Bytes(_) => Err(FlexError::Codec("expected scalar, got bytes".into())),
        }
    }

    pub fn as_u32(&self) -> Result<u32> {
        Ok(self.as_u64()? as u32)
    }

    pub fn as_i64_zigzag(&self) -> Result<i64> {
        Ok(zigzag_decode(self.as_u64()?))
    }

    pub fn as_f64(&self) -> Result<f64> {
        match self {
            WireValue::Fixed64(v) => Ok(f64::from_bits(*v)),
            _ => Err(FlexError::Codec("expected double".into())),
        }
    }

    pub fn as_bytes(&self) -> Result<&'a [u8]> {
        match self {
            WireValue::Bytes(b) => Ok(b),
            _ => Err(FlexError::Codec("expected length-delimited field".into())),
        }
    }

    pub fn as_str(&self) -> Result<&'a str> {
        std::str::from_utf8(self.as_bytes()?)
            .map_err(|_| FlexError::Codec("invalid UTF-8 in string field".into()))
    }

    /// Decode a packed repeated-uint field.
    pub fn as_packed_uints(&self) -> Result<Vec<u64>> {
        let mut data = self.as_bytes()?;
        let mut out = Vec::new();
        while !data.is_empty() {
            let (v, rest) = split_uvarint(data)?;
            out.push(v);
            data = rest;
        }
        Ok(out)
    }
}

/// Streaming reader over an encoded message.
#[derive(Debug, Clone, Copy)]
pub struct WireReader<'a> {
    data: &'a [u8],
}

impl<'a> WireReader<'a> {
    pub fn new(data: &'a [u8]) -> Self {
        WireReader { data }
    }

    /// Next `(field number, value)`, or `None` at end of input.
    pub fn next_field(&mut self) -> Result<Option<(u32, WireValue<'a>)>> {
        if self.data.is_empty() {
            return Ok(None);
        }
        let (key, rest) = split_uvarint(self.data)?;
        self.data = rest;
        let field = (key >> 3) as u32;
        if field == 0 {
            return Err(FlexError::Codec("field number 0 is invalid".into()));
        }
        let value = match WireType::from_bits(key & 0x7)? {
            WireType::Varint => {
                let (v, rest) = split_uvarint(self.data)?;
                self.data = rest;
                WireValue::Varint(v)
            }
            WireType::Fixed64 => {
                let Some((bytes, rest)) = self.data.split_first_chunk::<8>() else {
                    return Err(FlexError::Codec("truncated fixed64".into()));
                };
                self.data = rest;
                WireValue::Fixed64(u64::from_le_bytes(*bytes))
            }
            WireType::LengthDelimited => {
                let (len, rest) = split_uvarint(self.data)?;
                self.data = rest;
                let Some((v, rest)) = self.data.split_at_checked(len as usize) else {
                    return Err(FlexError::Codec("truncated length-delimited field".into()));
                };
                self.data = rest;
                WireValue::Bytes(v)
            }
            WireType::Fixed32 => {
                let Some((bytes, rest)) = self.data.split_first_chunk::<4>() else {
                    return Err(FlexError::Codec("truncated fixed32".into()));
                };
                self.data = rest;
                WireValue::Fixed32(u32::from_le_bytes(*bytes))
            }
        };
        Ok(Some((field, value)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn uvarint_roundtrip_known_values() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16383,
            16384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let (got, n) = get_uvarint(&buf).unwrap();
            assert_eq!(got, v);
            assert_eq!(n, buf.len());
            assert_eq!(n, uvarint_len(v));
        }
        // Protobuf's canonical example: 300 = [0xAC, 0x02].
        let mut buf = BytesMut::new();
        put_uvarint(&mut buf, 300);
        assert_eq!(&buf[..], &[0xAC, 0x02]);
    }

    #[test]
    fn uvarint_rejects_truncation_and_overflow() {
        assert!(get_uvarint(&[0x80]).is_err());
        assert!(get_uvarint(&[]).is_err());
        // 11-byte varint.
        assert!(get_uvarint(&[0x80; 11]).is_err());
        // u64::MAX is [0xFF; 9] + 0x01; 0x02 in the last byte overflows.
        let mut overflow = vec![0xFFu8; 9];
        overflow.push(0x02);
        assert!(get_uvarint(&overflow).is_err());
    }

    #[test]
    fn zigzag_known_values() {
        // The protobuf documentation table.
        assert_eq!(zigzag_encode(0), 0);
        assert_eq!(zigzag_encode(-1), 1);
        assert_eq!(zigzag_encode(1), 2);
        assert_eq!(zigzag_encode(-2), 3);
        assert_eq!(zigzag_encode(2147483647), 4294967294);
        assert_eq!(zigzag_encode(-2147483648), 4294967295);
    }

    #[test]
    fn writer_skips_defaults() {
        let mut w = WireWriter::new();
        w.uint(1, 0);
        w.double(2, 0.0);
        w.string(3, "");
        w.bytes_field(4, &[]);
        w.packed_uints(5, &[]);
        assert!(w.is_empty(), "default values must not hit the wire");
    }

    #[test]
    fn field_roundtrip_all_types() {
        let mut w = WireWriter::new();
        w.uint(1, 42);
        w.sint(2, -7);
        w.double(3, 2.5);
        w.fixed32(4, 0xDEAD);
        w.string(5, "flexran");
        w.bytes_field(6, &[1, 2, 3]);
        w.packed_uints(7, &[0, 1, 300]);
        w.message(8, |m| {
            m.uint(1, 9);
        });
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let mut seen = 0;
        while let Some((field, value)) = r.next_field().unwrap() {
            seen += 1;
            match field {
                1 => assert_eq!(value.as_u64().unwrap(), 42),
                2 => assert_eq!(value.as_i64_zigzag().unwrap(), -7),
                3 => assert_eq!(value.as_f64().unwrap(), 2.5),
                4 => assert_eq!(value.as_u32().unwrap(), 0xDEAD),
                5 => assert_eq!(value.as_str().unwrap(), "flexran"),
                6 => assert_eq!(value.as_bytes().unwrap(), &[1, 2, 3]),
                7 => assert_eq!(value.as_packed_uints().unwrap(), vec![0, 1, 300]),
                8 => {
                    let mut inner = WireReader::new(value.as_bytes().unwrap());
                    let (f, v) = inner.next_field().unwrap().unwrap();
                    assert_eq!((f, v.as_u64().unwrap()), (1, 9));
                }
                other => panic!("unexpected field {other}"),
            }
        }
        assert_eq!(seen, 8);
    }

    #[test]
    fn long_nested_message_shifts_for_multibyte_length() {
        // Payload ≥ 128 bytes forces the in-place encoder to widen the
        // one-byte length placeholder; nesting inside the long message
        // checks the shift composes with recursion.
        let mut w = WireWriter::new();
        w.message(1, |m| {
            m.bytes_field(2, &[0xAB; 300]);
            m.message(3, |inner| inner.uint(1, 7));
        });
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let (field, value) = r.next_field().unwrap().unwrap();
        assert_eq!(field, 1);
        let payload = value.as_bytes().unwrap();
        assert!(payload.len() > 300);
        let mut inner = WireReader::new(payload);
        let (f2, v2) = inner.next_field().unwrap().unwrap();
        assert_eq!(f2, 2);
        assert_eq!(v2.as_bytes().unwrap(), &[0xAB; 300][..]);
        let (f3, v3) = inner.next_field().unwrap().unwrap();
        assert_eq!(f3, 3);
        let mut r3 = WireReader::new(v3.as_bytes().unwrap());
        let (f, v) = r3.next_field().unwrap().unwrap();
        assert_eq!((f, v.as_u64().unwrap()), (1, 7));
        assert!(r.next_field().unwrap().is_none());
    }

    #[test]
    fn unknown_fields_are_skippable() {
        // A decoder looping next_field simply ignores unknown numbers —
        // verify every wire type parses past correctly.
        let mut w = WireWriter::new();
        w.uint(99, 7);
        w.double(98, 1.25);
        w.string(97, "x");
        w.fixed32(96, 5);
        w.uint(1, 1);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes);
        let mut got_field1 = false;
        while let Some((field, value)) = r.next_field().unwrap() {
            if field == 1 {
                got_field1 = value.as_u64().unwrap() == 1;
            }
        }
        assert!(got_field1);
    }

    #[test]
    fn reader_rejects_garbage() {
        // Wire type 3 (group start) unsupported.
        let mut r = WireReader::new(&[0x0B]);
        assert!(r.next_field().is_err());
        // Field number 0.
        let mut r = WireReader::new(&[0x00, 0x00]);
        assert!(r.next_field().is_err());
        // Truncated length-delimited.
        let mut w = WireWriter::new();
        w.bytes_field(1, &[1, 2, 3, 4]);
        let bytes = w.finish();
        let mut r = WireReader::new(&bytes[..bytes.len() - 2]);
        assert!(r.next_field().is_err());
        // Truncated fixed64 / fixed32.
        let mut r = WireReader::new(&[0x09, 0x01, 0x02]);
        assert!(r.next_field().is_err());
        let mut r = WireReader::new(&[0x0D, 0x01]);
        assert!(r.next_field().is_err());
    }

    proptest! {
        #[test]
        fn uvarint_roundtrip(v in any::<u64>()) {
            let mut buf = BytesMut::new();
            put_uvarint(&mut buf, v);
            let (got, n) = get_uvarint(&buf).unwrap();
            prop_assert_eq!(got, v);
            prop_assert_eq!(n, buf.len());
            prop_assert_eq!(n, uvarint_len(v));
        }

        #[test]
        fn zigzag_roundtrip(v in any::<i64>()) {
            prop_assert_eq!(zigzag_decode(zigzag_encode(v)), v);
        }

        #[test]
        fn packed_roundtrip(vs in proptest::collection::vec(any::<u64>(), 0..50)) {
            let mut w = WireWriter::new();
            w.packed_uints(1, &vs);
            let bytes = w.finish();
            if vs.is_empty() {
                prop_assert!(bytes.is_empty());
            } else {
                let mut r = WireReader::new(&bytes);
                let (_, v) = r.next_field().unwrap().unwrap();
                prop_assert_eq!(v.as_packed_uints().unwrap(), vs);
            }
        }

        #[test]
        fn reader_never_panics_on_random_input(data in proptest::collection::vec(any::<u8>(), 0..256)) {
            let mut r = WireReader::new(&data);
            // Must terminate with Ok(None) or Err, never panic or loop.
            for _ in 0..data.len() + 1 {
                match r.next_field() {
                    Ok(Some(_)) => continue,
                    Ok(None) | Err(_) => break,
                }
            }
        }
    }
}
