//! Length-delimited framing for stream transports.
//!
//! The FlexRAN protocol runs over TCP in the paper's implementation; TCP
//! gives a byte stream, so each protobuf message is prefixed with a 4-byte
//! big-endian length. The codec below is incremental (feed bytes, pop
//! frames) so it works with non-blocking sockets.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use flexran_types::{FlexError, Result};

/// Hard cap on a single frame: a full statistics report for hundreds of
/// UEs is tens of kilobytes; anything near this limit is corruption.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Oversize-frame error, out of line so the `*_into` hot path stays
/// free of allocation sites (the message only materializes on failure).
#[cold]
fn oversize(len: usize) -> FlexError {
    FlexError::Codec(format!(
        "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
    ))
}

/// Prefix `payload` with its 4-byte length.
pub fn encode_frame(payload: &[u8]) -> Result<Bytes> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(oversize(payload.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    Ok(buf.freeze())
}

/// Like [`encode_frame`], but into a caller-provided buffer (cleared
/// first) — the allocation-free path for transports that keep one frame
/// buffer across sends.
pub fn encode_frame_into(payload: &[u8], buf: &mut BytesMut) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(oversize(payload.len()));
    }
    buf.clear();
    buf.reserve(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    Ok(())
}

/// Incremental frame decoder.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed raw bytes received from the stream.
    pub fn extend(&mut self, data: &[u8]) {
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>> {
        let Some(header) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*header) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(FlexError::Transport(format!(
                "peer announced a {len}-byte frame (cap {MAX_FRAME_BYTES}); stream corrupt"
            )));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(b"hello").unwrap();
        let mut d = FrameDecoder::new();
        d.extend(&frame);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn handles_partial_delivery() {
        let frame = encode_frame(b"flexran").unwrap();
        let mut d = FrameDecoder::new();
        d.extend(&frame[..3]);
        assert!(d.next_frame().unwrap().is_none());
        d.extend(&frame[3..6]);
        assert!(d.next_frame().unwrap().is_none());
        d.extend(&frame[6..]);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"flexran");
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"a").unwrap());
        stream.extend_from_slice(&encode_frame(b"bb").unwrap());
        stream.extend_from_slice(&encode_frame(b"").unwrap());
        let mut d = FrameDecoder::new();
        d.extend(&stream);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"a");
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"bb");
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut d = FrameDecoder::new();
        d.extend(&(u32::MAX).to_be_bytes());
        assert!(d.next_frame().is_err());
        assert!(encode_frame(&vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    }

    proptest! {
        #[test]
        fn roundtrip_many_frames_any_chunking(
            frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..10),
            chunk in 1usize..64,
        ) {
            let mut stream = Vec::new();
            for f in &frames {
                stream.extend_from_slice(&encode_frame(f).unwrap());
            }
            let mut d = FrameDecoder::new();
            let mut out = Vec::new();
            for c in stream.chunks(chunk) {
                d.extend(c);
                while let Some(f) = d.next_frame().unwrap() {
                    out.push(f.to_vec());
                }
            }
            prop_assert_eq!(out, frames);
            prop_assert_eq!(d.buffered(), 0);
        }
    }
}
