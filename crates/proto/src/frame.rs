//! Length-delimited framing for stream transports.
//!
//! The FlexRAN protocol runs over TCP in the paper's implementation; TCP
//! gives a byte stream, so each protobuf message is prefixed with a 4-byte
//! big-endian length. The codec below is incremental (feed bytes, pop
//! frames) so it works with non-blocking sockets.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use flexran_types::{FlexError, Result};

/// Hard cap on a single frame: a full statistics report for hundreds of
/// UEs is tens of kilobytes; anything near this limit is corruption.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Oversize-frame error, out of line so the `*_into` hot path stays
/// free of allocation sites (the message only materializes on failure).
#[cold]
fn oversize(len: usize) -> FlexError {
    // lint:allow(alloc-reach) error path — materializes only on failure
    FlexError::Codec(format!(
        "frame of {len} bytes exceeds the {MAX_FRAME_BYTES}-byte cap"
    ))
}

/// Prefix `payload` with its 4-byte length.
pub fn encode_frame(payload: &[u8]) -> Result<Bytes> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(oversize(payload.len()));
    }
    let mut buf = BytesMut::with_capacity(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    Ok(buf.freeze())
}

/// Like [`encode_frame`], but into a caller-provided buffer (cleared
/// first) — the allocation-free path for transports that keep one frame
/// buffer across sends.
pub fn encode_frame_into(payload: &[u8], buf: &mut BytesMut) -> Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(oversize(payload.len()));
    }
    buf.clear();
    buf.reserve(4 + payload.len());
    buf.put_u32(payload.len() as u32);
    buf.put_slice(payload);
    Ok(())
}

/// Hard cap on bytes the decoder will buffer before declaring the stream
/// corrupt. A well-formed stream never needs more than one frame plus its
/// header between `next_frame` calls per `extend`; the factor of two
/// absorbs coalesced delivery without letting a hostile peer grow the
/// buffer without bound.
pub const MAX_BUFFERED_BYTES: usize = 2 * (4 + MAX_FRAME_BYTES);

/// Corrupt-stream error, out of line like [`oversize`].
#[cold]
fn corrupt(reason: &'static str) -> FlexError {
    FlexError::Transport(format!("frame stream corrupt: {reason}"))
}

/// Incremental frame decoder.
///
/// Once a corrupt header is seen the stream is *poisoned*: there is no way
/// to re-synchronize a length-prefixed stream after a bad length, so the
/// decoder drops everything buffered, discards all further input, and
/// returns the same structured error from every subsequent `next_frame`
/// call. This keeps memory bounded on an adversarial stream and guarantees
/// the error is surfaced on every poll instead of only once — callers that
/// swallow one error still see the stream as dead, never as silently
/// desynced.
#[derive(Debug, Default)]
pub struct FrameDecoder {
    buf: BytesMut,
    /// Why the stream was declared corrupt, if it was.
    poisoned: Option<&'static str>,
    /// Bytes discarded after poisoning (diagnostics).
    discarded: u64,
}

impl FrameDecoder {
    pub fn new() -> Self {
        Self::default()
    }

    /// Feed raw bytes received from the stream. Input past a poisoned
    /// header or past [`MAX_BUFFERED_BYTES`] is discarded, not buffered.
    pub fn extend(&mut self, data: &[u8]) {
        if self.poisoned.is_some() {
            self.discarded += data.len() as u64;
            return;
        }
        if self.buf.len().saturating_add(data.len()) > MAX_BUFFERED_BYTES {
            self.poison("receive buffer overflow");
            self.discarded += data.len() as u64;
            return;
        }
        self.buf.extend_from_slice(data);
    }

    /// Pop the next complete frame, if one is buffered.
    pub fn next_frame(&mut self) -> Result<Option<Bytes>> {
        if let Some(reason) = self.poisoned {
            return Err(corrupt(reason));
        }
        let Some(header) = self.buf.first_chunk::<4>() else {
            return Ok(None);
        };
        let len = u32::from_be_bytes(*header) as usize;
        if len > MAX_FRAME_BYTES {
            self.poison("announced frame length exceeds cap");
            return Err(corrupt("announced frame length exceeds cap"));
        }
        if self.buf.len() < 4 + len {
            return Ok(None);
        }
        self.buf.advance(4);
        Ok(Some(self.buf.split_to(len).freeze()))
    }

    #[cold]
    fn poison(&mut self, reason: &'static str) {
        self.poisoned = Some(reason);
        self.discarded += self.buf.len() as u64;
        self.buf = BytesMut::new(); // drop the backing allocation too
    }

    /// Whether a corrupt header has permanently poisoned this stream.
    pub fn is_poisoned(&self) -> bool {
        self.poisoned.is_some()
    }

    /// Bytes discarded due to poisoning (diagnostics).
    pub fn discarded(&self) -> u64 {
        self.discarded
    }

    /// Bytes currently buffered (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Forget all buffered state, including poisoning. For transports that
    /// reconnect: a fresh connection is a fresh stream.
    pub fn reset(&mut self) {
        self.buf.clear();
        self.poisoned = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn roundtrip_single_frame() {
        let frame = encode_frame(b"hello").unwrap();
        let mut d = FrameDecoder::new();
        d.extend(&frame);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"hello");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn handles_partial_delivery() {
        let frame = encode_frame(b"flexran").unwrap();
        let mut d = FrameDecoder::new();
        d.extend(&frame[..3]);
        assert!(d.next_frame().unwrap().is_none());
        d.extend(&frame[3..6]);
        assert!(d.next_frame().unwrap().is_none());
        d.extend(&frame[6..]);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"flexran");
    }

    #[test]
    fn handles_coalesced_frames() {
        let mut stream = Vec::new();
        stream.extend_from_slice(&encode_frame(b"a").unwrap());
        stream.extend_from_slice(&encode_frame(b"bb").unwrap());
        stream.extend_from_slice(&encode_frame(b"").unwrap());
        let mut d = FrameDecoder::new();
        d.extend(&stream);
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"a");
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"bb");
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"");
        assert!(d.next_frame().unwrap().is_none());
    }

    #[test]
    fn oversized_frames_rejected() {
        let mut d = FrameDecoder::new();
        d.extend(&(u32::MAX).to_be_bytes());
        assert!(d.next_frame().is_err());
        assert!(encode_frame(&vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn corrupt_header_poisons_the_stream() {
        // A 4 GiB announced length must not allocate, must surface a
        // structured error, and must keep erroring (not silently desync)
        // while discarding all further input.
        let mut d = FrameDecoder::new();
        d.extend(&(u32::MAX).to_be_bytes());
        d.extend(b"trailing garbage");
        assert!(matches!(d.next_frame(), Err(FlexError::Transport(_))));
        assert!(d.is_poisoned());
        assert_eq!(d.buffered(), 0);
        // The error repeats on every poll; new input is discarded.
        d.extend(&encode_frame(b"valid").unwrap());
        assert!(matches!(d.next_frame(), Err(FlexError::Transport(_))));
        assert_eq!(d.buffered(), 0);
        assert!(d.discarded() > 0);
        // A reconnect resets the stream.
        d.reset();
        assert!(!d.is_poisoned());
        d.extend(&encode_frame(b"valid").unwrap());
        assert_eq!(d.next_frame().unwrap().unwrap().as_ref(), b"valid");
    }

    #[test]
    fn buffering_is_bounded() {
        // Feeding more than MAX_BUFFERED_BYTES without a complete frame
        // poisons the stream instead of growing without bound.
        let mut d = FrameDecoder::new();
        // Announce a maximal frame but never complete it, then keep
        // stuffing bytes.
        d.extend(&(MAX_FRAME_BYTES as u32).to_be_bytes());
        let chunk = vec![0u8; 1024 * 1024];
        for _ in 0..2 * (MAX_FRAME_BYTES / chunk.len()) + 2 {
            d.extend(&chunk);
        }
        assert!(d.is_poisoned());
        assert!(d.buffered() <= MAX_BUFFERED_BYTES);
        assert!(matches!(d.next_frame(), Err(FlexError::Transport(_))));
    }

    proptest! {
        /// Adversarial-stream safety: random byte mutations (flip,
        /// truncate, duplicate, insert) applied to a valid framed stream
        /// must never panic, never hang, and never buffer more than the
        /// cap — decode errors and poisoning are the only acceptable
        /// outcomes.
        #[test]
        fn mutated_streams_never_panic_or_grow(
            frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..64), 1..6),
            mutation in 0u8..4,
            pos_seed in any::<usize>(),
            byte in any::<u8>(),
            chunk in 1usize..32,
        ) {
            let mut stream = Vec::new();
            for f in &frames {
                stream.extend_from_slice(&encode_frame(f).unwrap());
            }
            let pos = pos_seed % stream.len().max(1);
            match mutation {
                0 => { // flip
                    if let Some(b) = stream.get_mut(pos) { *b ^= byte | 1; }
                }
                1 => stream.truncate(pos),          // truncate
                2 => { // duplicate a slice
                    let dup: Vec<u8> = stream[pos..].to_vec();
                    stream.extend_from_slice(&dup);
                }
                _ => stream.insert(pos.min(stream.len()), byte), // insert
            }
            let mut d = FrameDecoder::new();
            for c in stream.chunks(chunk.max(1)) {
                d.extend(c);
                // Bounded loop: each iteration either yields a frame
                // (consuming ≥4 bytes) or stops — no hang possible.
                loop {
                    match d.next_frame() {
                        Ok(Some(f)) => prop_assert!(f.len() <= MAX_FRAME_BYTES),
                        Ok(None) => break,
                        Err(_) => break,
                    }
                }
                prop_assert!(d.buffered() <= MAX_BUFFERED_BYTES);
            }
        }
    }

    proptest! {
        #[test]
        fn roundtrip_many_frames_any_chunking(
            frames in proptest::collection::vec(proptest::collection::vec(any::<u8>(), 0..200), 1..10),
            chunk in 1usize..64,
        ) {
            let mut stream = Vec::new();
            for f in &frames {
                stream.extend_from_slice(&encode_frame(f).unwrap());
            }
            let mut d = FrameDecoder::new();
            let mut out = Vec::new();
            for c in stream.chunks(chunk) {
                d.extend(c);
                while let Some(f) = d.next_frame().unwrap() {
                    out.push(f.to_vec());
                }
            }
            prop_assert_eq!(out, frames);
            prop_assert_eq!(d.buffered(), 0);
        }
    }
}
