//! Golden wire-format snapshot.
//!
//! The FlexRAN protocol's value rests on a *stable* wire format: the
//! signalling-overhead experiment (paper Fig. 7) measures exact encoded
//! sizes, and mixed-version master/agent deployments rely on protobuf
//! field-number compatibility. This test freezes the bytes of one
//! representative message per category; any encoder change that moves a
//! field number, wire type or encoding detail fails here and must be a
//! deliberate, reviewed protocol revision (update the hex only then).
//!
//! Protocol revision: every envelope now ends in a five-byte integrity
//! trailer (envelope field 2, fixed32 CRC-32 of the preceding bytes), so
//! corrupted or truncated frames are rejected at decode instead of
//! folding phantom state into the RIB.

use flexran_proto::messages::commands::DciPb;
use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::{
    CellReport, ConfigBundleAck, ConfigBundlePb, ConfigBundlePush, DlSchedulingCommand,
    EventNotification, FlexranMessage, Header, Hello, ResyncRequest, StatsReply, UeReport,
};
use flexran_types::ids::EnbId;

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn snapshot(msg: &FlexranMessage) -> String {
    hex(&msg.encode(Header::with_xid(7)))
}

/// Every golden message must also decode back to itself: the snapshot
/// alone would not catch the encoder and decoder drifting together in a
/// way that loses information.
fn roundtrip(msg: &FlexranMessage) {
    let bytes = msg.encode(Header::with_xid(7));
    let (header, decoded) = FlexranMessage::decode(&bytes).expect("golden bytes decode");
    assert_eq!(header.xid, 7);
    assert_eq!(&decoded, msg);
}

#[test]
fn hello_snapshot() {
    let msg = FlexranMessage::Hello(Hello {
        enb_id: EnbId(42),
        n_cells: 2,
        capabilities: vec!["dl_scheduling".into(), "handover".into()],
        applied_config: 0,
    });
    roundtrip(&msg);
    // `applied_config` (field 4) is skip-if-zero, so a pre-rollout Hello
    // still encodes to the historical bytes.
    assert_eq!(
        snapshot(&msg),
        "0a0408011007521d082a10021a0d646c5f7363686564756c696e671a0868616e646f766572151cc70442"
    );
}

#[test]
fn config_bundle_push_snapshot() {
    // Added for the fleet config rollout: envelope field 31. New message —
    // existing field numbers are untouched.
    let msg = FlexranMessage::ConfigBundlePush(ConfigBundlePush {
        enb_id: EnbId(4),
        bundle: ConfigBundlePb {
            version: 3,
            policy_yaml: "mac:\n".into(),
            vsf_key: "max-cqi".into(),
            scheduler: "max-cqi".into(),
            signature: 0x1122334455667788,
        },
    });
    roundtrip(&msg);
    assert_eq!(
        snapshot(&msg),
        "0a0408011007fa012908041225080312056d61633a0a1a076d61782d6371692207\
         6d61782d6371692888ef99abc5e88c9111150cbefe2f"
    );
}

#[test]
fn config_bundle_ack_snapshot() {
    // Added for the fleet config rollout: envelope field 32.
    let msg = FlexranMessage::ConfigBundleAck(ConfigBundleAck {
        enb_id: EnbId(4),
        version: 3,
        signature: 0x1122334455667788,
        ok: true,
        error: String::new(),
    });
    roundtrip(&msg);
    assert_eq!(
        snapshot(&msg),
        "0a0408011007820210080410031888ef99abc5e88c91112001150b09d325"
    );
}

#[test]
fn stats_reply_snapshot() {
    let msg = FlexranMessage::StatsReply(StatsReply {
        enb_id: EnbId(1),
        tti: 1000,
        cells: vec![CellReport {
            cell_id: 0,
            noise_interference_decidbm: -1043,
            dl_prbs_used_total: 50,
            ul_prbs_used_total: 12,
            active_ues: 1,
            ..CellReport::default()
        }],
        ues: vec![UeReport {
            rnti: 0x100,
            cell: 0,
            connected: true,
            wideband_cqi: 12,
            subband_cqi: vec![11, 12, 13],
            bsr: vec![0, 7, 0, 0],
            ..UeReport::default()
        }],
    });
    roundtrip(&msg);
    assert_eq!(snapshot(&msg), "0a04080110078a0129080110e8071a0b080110a5101832200c280122150880021001280c32030b0c0d3a0400070000800201155c793008");
}

#[test]
fn dl_scheduling_command_snapshot() {
    let msg = FlexranMessage::DlSchedulingCommand(DlSchedulingCommand {
        enb_id: EnbId(3),
        cell: 0,
        target_tti: 2048,
        dcis: vec![DciPb {
            rnti: 0x101,
            n_prb: 25,
            mcs: 16,
            harq_pid: 2,
            ndi: true,
            tpc: 1,
            dai: 0,
            vrb_format: 0,
            aggregation_level: 4,
            tbs_bits: 18336,
            rb_bitmap: 0x1ffff,
        }],
    });
    roundtrip(&msg);
    assert_eq!(
        snapshot(&msg),
        "0a04080110079a012108031001188010221808810210191810200328013001480450a08f015dffff010015c902efbe"
    );
}

#[test]
fn resync_request_snapshot() {
    // Added for master crash-recovery: envelope field 30. New message —
    // existing field numbers are untouched.
    let msg = FlexranMessage::ResyncRequest(ResyncRequest {
        enb_id: EnbId(9),
        since_tti: 500,
    });
    roundtrip(&msg);
    assert_eq!(snapshot(&msg), "0a0408011007f20105080910f40315ddd70bb4");
}

#[test]
fn event_notification_snapshot() {
    let msg = FlexranMessage::EventNotification(EventNotification {
        enb_id: EnbId(5),
        kind: EventKind::UeAttached,
        cell: 0,
        rnti: 0x102,
        ue_tag: 9,
        tti: 777,
        ..EventNotification::default()
    });
    roundtrip(&msg);
    assert_eq!(
        snapshot(&msg),
        "0a040801100792010e080510011801208202280a30890615a5fabd99"
    );
}
