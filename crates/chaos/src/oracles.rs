//! Invariant oracles evaluated every TTI of a chaos run.
//!
//! Each oracle states a property that must hold *regardless of the fault
//! schedule* — crashed processes, corrupted frames and stalled agents
//! are allowed to delay convergence, never to break these:
//!
//! 1. **failover-legality** — an agent's [`FailoverState`] only moves
//!    along the edges of the liveness state machine (sampled at TTI
//!    granularity, so one-TTI composites of legal edges are legal too).
//! 2. **prb-capacity** — a cell never spends more PRBs in one subframe
//!    than its bandwidth allows (new data plus the retransmissions
//!    reserved from one earlier subframe).
//! 3. **harq-consistency** — per-UE HARQ counters are monotonic; the
//!    data plane never un-transmits.
//! 4. **rib-stack-consistency** — once a quiesce window has passed since
//!    the last fault touching an agent, the master's RIB subtree for it
//!    is fresh and its UE leaves match the eNodeB stack exactly (no
//!    phantom UEs, no lost UEs).
//! 5. **command-conservation** — non-sheddable traffic is never shed by
//!    the bounded link queues; on a loss-free link every scheduling
//!    command the master sent is at the agent or still in flight, and on
//!    a lossy link the agent never *receives* more commands than were
//!    sent plus duplicated/corrupted frames can explain.
//! 6. **decision-sanity** — at most one downlink scheduling decision is
//!    applied per cell per TTI (the stack rejects duplicates, e.g. from
//!    a duplicated wire frame, with a `Conflict` error — never applies
//!    them twice).
//! 7. **shard-ownership** — an agent's RIB subtree is resident in
//!    exactly the shard the master's ownership map assigns it to, and
//!    never duplicated into another shard, no matter how many
//!    crash/restart cycles re-partitioned the sessions.
//! 8. **budget-consistency** — the TTI deadline-budget histograms stay
//!    internally consistent (structure only; never wall-clock values).
//! 9. **config-provenance** — no agent ever runs a config bundle the
//!    master never issued (every applied signature verifies against the
//!    issued set), and once the rollout state machine rests — converged
//!    or rolled back — every quiesced agent runs exactly the version the
//!    machine says it should: the active version after convergence, the
//!    last converged version after a rollback.
//!
//! A violation records the run seed and the exact TTI, so any failure
//! replays bit-identically from the seed alone.

use std::collections::{BTreeMap, BTreeSet};

use flexran::agent::FailoverState;
use flexran::controller::RolloutPhase;
use flexran::harness::SimHarness;
use flexran::proto::transport::Transport;
use flexran::proto::MessageCategory;
use flexran::types::ids::{CellId, EnbId, Rnti};

/// Cap on violation records kept per run; the total is always counted.
const MAX_RECORDED: usize = 64;

/// One invariant violation, pinned to the (seed, TTI) that reproduces it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub seed: u64,
    pub tti: u64,
    pub oracle: &'static str,
    pub detail: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "invariant violated: oracle={} seed={} tti={} — {} \
             (replay: experiments chaos --seed {})",
            self.oracle, self.seed, self.tti, self.detail, self.seed
        )
    }
}

#[derive(Clone, Copy)]
struct CellCounters {
    dl_prbs: u64,
    ul_prbs: u64,
    decisions: u64,
}

/// The oracle battery: carries last-TTI observations per agent so each
/// check is a per-TTI delta, and accumulates [`Violation`]s.
pub struct Oracles {
    seed: u64,
    grace: u64,
    /// Negative control: from this TTI on, the PRB oracle pretends the
    /// cell has zero capacity until it has fired exactly once.
    inject_at: Option<u64>,
    injected: bool,
    prev_failover: Vec<FailoverState>,
    prev_cell: Vec<BTreeMap<CellId, CellCounters>>,
    prev_harq: Vec<BTreeMap<(CellId, Rnti), (u64, u64)>>,
    /// Every distinct config signature each agent has ever run. Config
    /// pushes are retried after losses, so conservation is counted by
    /// `(agent, signature)` — a set — never by frame: a retry or a
    /// duplicated wire frame re-applying the same signed bundle is one
    /// config, not two.
    seen_configs: Vec<BTreeSet<u64>>,
    pub violations: Vec<Violation>,
    pub total: u64,
}

/// Legal `FailoverState` moves at TTI granularity. Within one TTI the
/// agent first drains the transport (rx/ack edges) and then ticks the
/// silence clock, so the observable one-TTI composites are:
/// `C→{C,D,L}`, `D→{D,C,L}`, `L→{L,R,C}`, `R→{R,C,L}` — an agent crash
/// resets the tracker to `Connected`, which is `*→C`, also in the set.
fn legal(prev: FailoverState, cur: FailoverState) -> bool {
    use FailoverState::*;
    !matches!(
        (prev, cur),
        (Connected, Rejoining)
            | (Degraded, Rejoining)
            | (LocalControl, Degraded)
            | (Rejoining, Degraded)
    )
}

impl Oracles {
    pub fn new(seed: u64, grace: u64, inject_at: Option<u64>, n_enbs: usize) -> Self {
        Oracles {
            seed,
            grace,
            inject_at,
            injected: false,
            prev_failover: vec![FailoverState::Connected; n_enbs],
            prev_cell: vec![BTreeMap::new(); n_enbs],
            prev_harq: vec![BTreeMap::new(); n_enbs],
            seen_configs: vec![BTreeSet::new(); n_enbs],
            violations: Vec::new(),
            total: 0,
        }
    }

    fn record(&mut self, tti: u64, oracle: &'static str, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation {
                seed: self.seed,
                tti,
                oracle,
                detail,
            });
        }
    }

    /// Evaluate every oracle against the post-step state of `sim`.
    ///
    /// `disturb[i]` is the last TTI a fault was active on agent `i`
    /// (gates the convergence-dependent RIB check); `lossless[i]` is
    /// whether agent `i`'s link has been loss-free for the whole run
    /// (gates the exact conservation equation).
    pub fn check(&mut self, sim: &SimHarness, enbs: &[EnbId], disturb: &[u64], lossless: &[bool]) {
        let now = sim.now().0;
        let master_down = sim.master_down();
        for (i, &enb) in enbs.iter().enumerate() {
            let agent = sim.agent(enb).expect("chaos agents are never removed");

            // 1. Failover state-machine legality.
            let cur = agent.failover_state();
            let prev = self.prev_failover[i];
            self.prev_failover[i] = cur;
            if !legal(prev, cur) {
                self.record(
                    now,
                    "failover-legality",
                    format!("{enb}: illegal transition {prev} → {cur}"),
                );
            }

            // 2 + 6. Per-cell deltas: PRB spend and decision application.
            for cell in agent.enb().cell_ids() {
                let stats = agent.enb().cell_stats(cell).expect("cell exists");
                let cfg = agent.enb().cell_config(cell).expect("cell exists");
                let cur = CellCounters {
                    dl_prbs: stats.dl_prbs_used,
                    ul_prbs: stats.ul_prbs_used,
                    decisions: stats.decisions_applied,
                };
                let prev = *self.prev_cell[i].entry(cell).or_insert(cur);
                self.prev_cell[i].insert(cell, cur);
                if cur.dl_prbs < prev.dl_prbs
                    || cur.ul_prbs < prev.ul_prbs
                    || cur.decisions < prev.decisions
                {
                    self.record(
                        now,
                        "prb-capacity",
                        format!("{enb}/{cell}: cumulative cell counters went backwards"),
                    );
                    continue;
                }
                // Schedule-ahead decisions are sized against the full
                // bandwidth and retransmissions from one earlier
                // subframe are reserved on top, so one subframe can
                // legitimately spend up to 2×n_prb downlink.
                let inject = !self.injected && self.inject_at.is_some_and(|at| now >= at);
                let dl_cap = if inject {
                    0
                } else {
                    2 * cfg.dl_bandwidth.n_prb() as u64
                };
                let dl_delta = cur.dl_prbs - prev.dl_prbs;
                if dl_delta > dl_cap {
                    self.injected |= inject;
                    let tag = if inject { " [negative control]" } else { "" };
                    self.record(
                        now,
                        "prb-capacity",
                        format!("{enb}/{cell}: {dl_delta} DL PRBs in one TTI, cap {dl_cap}{tag}"),
                    );
                }
                let ul_cap = cfg.ul_bandwidth.n_prb() as u64;
                let ul_delta = cur.ul_prbs - prev.ul_prbs;
                if ul_delta > ul_cap {
                    self.record(
                        now,
                        "prb-capacity",
                        format!("{enb}/{cell}: {ul_delta} UL PRBs in one TTI, cap {ul_cap}"),
                    );
                }
                if cur.decisions - prev.decisions > 1 {
                    self.record(
                        now,
                        "decision-sanity",
                        format!(
                            "{enb}/{cell}: {} DL decisions applied in one TTI",
                            cur.decisions - prev.decisions
                        ),
                    );
                }
            }

            // 3. HARQ counters are monotonic.
            for cell in agent.enb().cell_ids() {
                for ue in agent.enb().ue_stats(cell).expect("cell exists") {
                    let key = (cell, ue.rnti);
                    let cur = (ue.harq_tx, ue.harq_retx);
                    let prev = *self.prev_harq[i].entry(key).or_insert(cur);
                    self.prev_harq[i].insert(key, cur);
                    if cur.0 < prev.0 || cur.1 < prev.1 {
                        self.record(
                            now,
                            "harq-consistency",
                            format!(
                                "{enb}/{cell}/{}: HARQ counters went backwards \
                                 ({},{}) → ({},{})",
                                ue.rnti, prev.0, prev.1, cur.0, cur.1
                            ),
                        );
                    }
                }
            }

            // 4. RIB ↔ stack consistency after the quiesce window.
            if !master_down && now.saturating_sub(disturb[i]) > self.grace {
                self.check_rib_consistency(sim, enb, now);
            }

            // 5. Command conservation.
            self.check_conservation(sim, enb, now, master_down, lossless[i]);

            // 9. Config provenance and resting-state landing.
            self.check_config(sim, enb, i, now, master_down, disturb[i]);

            // 7. Shard ownership (the sharded single-writer discipline).
            if !master_down {
                self.check_shard_ownership(sim, enb, now);
            }
        }

        // 8. Deadline-monitor internal consistency. Only the histogram
        //    invariants are checked, never actual wall-clock values —
        //    latencies vary run to run and must not affect chaos
        //    verdicts (replay determinism).
        for (tag, stats) in [
            ("harness", sim.budget_stats()),
            ("master", sim.master().budget_stats()),
        ] {
            if !stats.is_consistent() {
                self.record(
                    now,
                    "budget-consistency",
                    format!("{tag} TTI budget stats are internally inconsistent: {stats:?}"),
                );
            }
        }
    }

    fn check_shard_ownership(&mut self, sim: &SimHarness, enb: EnbId, now: u64) {
        let master = sim.master();
        let resident: Vec<usize> = master
            .shards()
            .iter()
            .filter(|s| s.rib().agent(enb).is_some())
            .map(|s| s.index())
            .collect();
        match master.shard_of(enb) {
            Some(owner) if resident == [owner] => {}
            Some(owner) => self.record(
                now,
                "shard-ownership",
                format!("{enb}: owner shard {owner} but subtree resident in {resident:?}"),
            ),
            None if resident.is_empty() => {}
            None => self.record(
                now,
                "shard-ownership",
                format!("{enb}: subtree resident in {resident:?} with no owning shard"),
            ),
        }
    }

    fn check_rib_consistency(&mut self, sim: &SimHarness, enb: EnbId, now: u64) {
        let agent = sim.agent(enb).expect("present");
        let rib = sim.master().view();
        let Some(node) = rib.agent(enb) else {
            self.record(
                now,
                "rib-stack-consistency",
                format!(
                    "{enb}: no RIB subtree {} TTIs after the last fault",
                    self.grace
                ),
            );
            return;
        };
        if node.is_stale() {
            self.record(
                now,
                "rib-stack-consistency",
                format!(
                    "{enb}: RIB still stale {} TTIs after the last fault",
                    self.grace
                ),
            );
            return;
        }
        let rib_set: BTreeSet<(CellId, Rnti)> = node
            .cells()
            .iter()
            .flat_map(|cn| cn.ues().iter().map(move |u| (cn.cell_id, u.rnti)))
            .collect();
        let mut stack_set: BTreeSet<(CellId, Rnti)> = BTreeSet::new();
        for cell in agent.enb().cell_ids() {
            for ue in agent.enb().ue_stats(cell).expect("cell exists") {
                stack_set.insert((cell, ue.rnti));
            }
        }
        if rib_set != stack_set {
            let lost: Vec<String> = stack_set
                .difference(&rib_set)
                .map(|(c, r)| format!("{c}/{r}"))
                .collect();
            let phantom: Vec<String> = rib_set
                .difference(&stack_set)
                .map(|(c, r)| format!("{c}/{r}"))
                .collect();
            self.record(
                now,
                "rib-stack-consistency",
                format!(
                    "{enb}: RIB diverges from the stack — lost [{}], phantom [{}]",
                    lost.join(" "),
                    phantom.join(" ")
                ),
            );
        }
    }

    fn check_config(
        &mut self,
        sim: &SimHarness,
        enb: EnbId,
        i: usize,
        now: u64,
        master_down: bool,
        disturbed: u64,
    ) {
        let (version, sig) = sim.agent(enb).expect("present").active_config();
        if sig != 0 {
            self.seen_configs[i].insert(sig);
        }
        if master_down {
            return; // the issued set is unreadable while the process is down
        }

        // 9a. Provenance: every signature this agent has *ever* run was
        // minted by the master. Membership is per (agent, signature) —
        // a retried or wire-duplicated push re-applying the same signed
        // bundle is one config, never two — so losses and retries can
        // neither trip this check nor hide a fabricated bundle.
        let issued = sim.master().issued_config_signatures();
        let rogue: Vec<u64> = self.seen_configs[i]
            .iter()
            .filter(|s| !issued.contains(s))
            .copied()
            .collect();
        for s in rogue {
            self.record(
                now,
                "config-provenance",
                format!("{enb}: ran config signature {s:016x} the master never issued"),
            );
        }

        // 9b. Resting-state landing: once the rollout machine rests and
        // the agent has been fault-free past the quiesce window, the
        // agent must run exactly the version the machine prescribes —
        // the rolled-out version after convergence, the last converged
        // version after a rollback.
        let status = sim.master().rollout_status();
        let expected = match status.phase {
            RolloutPhase::Converged => status.active_version,
            RolloutPhase::RolledBack => status.last_converged,
            _ => return, // idle or mid-flight: no landing prescribed yet
        };
        // A rollback with no prior converged version has nothing to
        // land on (the documented first-rollout limitation).
        if expected != 0 && now.saturating_sub(disturbed) > self.grace && version != expected {
            self.record(
                now,
                "config-provenance",
                format!(
                    "{enb}: runs config v{version} {} TTIs after quiesce but the \
                     {} rollout expects v{expected}",
                    self.grace, status.phase
                ),
            );
        }
    }

    fn check_conservation(
        &mut self,
        sim: &SimHarness,
        enb: EnbId,
        now: u64,
        master_down: bool,
        lossless: bool,
    ) {
        let transport = sim.agent(enb).expect("present").transport();
        // Priority shedding must never touch anything but stats replies.
        for cat in MessageCategory::ALL {
            if cat.sheddable() {
                continue;
            }
            let shed =
                transport.shed_towards_by_category(cat) + transport.shed_from_by_category(cat);
            if shed > 0 {
                self.record(
                    now,
                    "command-conservation",
                    format!("{enb}: {shed} non-sheddable {cat} message(s) shed"),
                );
            }
        }
        // Config pushes are deliberately NOT frame-counted here: the
        // rollout controller re-sends a bundle until the agent
        // advertises its signature, so tx > rx is routine and a
        // lost-then-retried push would double-count under frame
        // arithmetic. Config conservation is counted by (agent,
        // signature) in the config-provenance oracle instead.
        let cmds = MessageCategory::Commands;
        let rx = transport.rx_counters().messages(cmds);
        if master_down {
            return; // tx counter unreachable while the process is down
        }
        let Some(tx) = sim.master().session_tx_messages(enb, cmds) else {
            return; // session not (re-)identified yet
        };
        let in_flight = transport.in_flight_towards_by_category(cmds) as u64;
        if lossless {
            // Loss-free link: every command is at the agent or on the wire.
            if tx != rx + in_flight {
                self.record(
                    now,
                    "command-conservation",
                    format!("{enb}: commands tx={tx} ≠ rx={rx} + in-flight={in_flight}"),
                );
            }
        } else if let Some(handle) = sim.fault_handle(enb) {
            // Lossy link: receiving more than sent is only explicable by
            // duplicated frames (or corrupted frames decoding as another
            // category); anything beyond that is fabrication.
            let dup = handle.duplicated_by_category(cmds);
            let corrupted: u64 = MessageCategory::ALL
                .iter()
                .map(|c| handle.corrupted_by_category(*c))
                .sum();
            if rx > tx + dup + corrupted {
                self.record(
                    now,
                    "command-conservation",
                    format!(
                        "{enb}: commands rx={rx} exceeds tx={tx} + dup={dup} + corrupt={corrupted}"
                    ),
                );
            }
        }
    }
}
