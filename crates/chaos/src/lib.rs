#![forbid(unsafe_code)]
//! # flexran-chaos
//!
//! A seeded, schedule-driven fault orchestrator for the FlexRAN
//! platform, with invariant oracles evaluated every TTI.
//!
//! The engine drives a [`SimHarness`] scenario — centrally scheduled
//! eNodeBs behind a journaled master — and composes multi-layer faults
//! from one deterministic RNG stream:
//!
//! * **agent process crash/restart** — the agent loses all soft state
//!   (modules, subscriptions, liveness tracker); the eNodeB data plane
//!   survives, like a supervisor restarting a dead process next to a
//!   live modem.
//! * **master crash/restart** — the master process dies; its RIB journal
//!   survives "on disk" and its TCP links survive in the kernel; a
//!   restart recovers the RIB from the journal and re-syncs from the
//!   rejoining agents while the agents ride out the outage in local
//!   control.
//! * **wire faults** — windows of byte-level corruption, truncation,
//!   duplication and garbage insertion on the control links.
//! * **slow agents** — TTI-budget stalls: the agent keeps committing
//!   subframes but stops servicing the control plane.
//! * **delegation under fire** — VSF pushes issued at random times, so
//!   transfers get caught by crashes and corrupted frames.
//!
//! After every simulated TTI the oracle battery ([`oracles::Oracles`])
//! checks the invariants that no fault schedule may break. A violation
//! pins the run **seed** and **TTI**: re-running [`run_chaos`] with the
//! same [`ChaosConfig`] reproduces the entire fault stream and the
//! violation bit-identically (the engine draws every random decision
//! from `StdRng::seed_from_u64(seed)` and the simulation itself is
//! deterministic).

mod oracles;

pub use oracles::{Oracles, Violation};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexran::agent::AgentConfig;
use flexran::apps::CentralizedScheduler;
use flexran::controller::{RolloutConfig, RolloutPhase};
use flexran::harness::{SimConfig, SimHarness, UeRadioSpec};
use flexran::prelude::*;
use flexran::proto::{ReportConfig, ReportFlags, ReportType, VsfArtifact, VsfPush};
use flexran::sim::link::{FaultConfig, FaultHandle, LinkConfig, WireFaults};
use flexran::sim::traffic::CbrSource;
use flexran::stack::mac::scheduler::RoundRobinScheduler;

/// Knobs of one chaos run. Everything is derived from `seed`; two runs
/// with equal configs produce bit-identical [`ChaosReport`]s.
#[derive(Debug, Clone)]
pub struct ChaosConfig {
    /// Master seed of the run: seeds the fault schedule, the simulation
    /// and the per-link wire-fault RNGs.
    pub seed: u64,
    /// Chaos phase length in TTIs (after the fault-free warmup).
    pub ttis: u64,
    /// Fault-free TTIs to let the topology attach and subscribe.
    pub warmup: u64,
    pub n_enbs: u32,
    pub ues_per_enb: u32,
    /// Periodic stats-report period pushed to every agent.
    pub report_period: u32,
    /// Per-agent per-TTI probability of a process crash + restart.
    pub agent_crash_prob: f64,
    /// Per-TTI probability of a master crash (while it is up).
    pub master_crash_prob: f64,
    /// Master outage length range (TTIs), inclusive.
    pub master_outage: (u64, u64),
    /// Per-agent per-TTI probability of entering a TTI-budget stall.
    pub stall_prob: f64,
    /// Stall length range (TTIs), inclusive.
    pub stall_len: (u64, u64),
    /// Per-agent per-TTI probability of opening a wire-fault window.
    pub wire_prob: f64,
    /// Wire-fault window length range (TTIs), inclusive.
    pub wire_len: (u64, u64),
    /// Byte-level fault intensities while a window is open.
    pub wire: WireFaults,
    /// Per-agent per-TTI probability of pushing a (cached) VSF.
    pub delegation_prob: f64,
    /// Per-TTI probability of starting a fleet-config rollout (while the
    /// master is up and no rollout is in flight). Rollouts ride the same
    /// faulted links as everything else, so canary pushes get corrupted,
    /// canary agents crash mid-observation and the master dies mid-phase
    /// — exactly what the rollout state machine must survive. `0.0`
    /// keeps the fault stream identical to a pre-rollout schedule.
    pub rollout_prob: f64,
    /// KPI observation window of chaos-issued rollouts, in master TTIs.
    pub rollout_window: u64,
    /// Bounded control-link queue capacity (0 = unbounded).
    pub queue_cap: usize,
    /// Quiesce window: TTIs after the last fault on an agent before the
    /// RIB↔stack consistency oracle applies.
    pub grace: u64,
    /// Negative control: force a PRB-capacity violation at (or right
    /// after) this TTI, proving the oracles fire and replay exactly.
    pub inject_violation_at: Option<u64>,
    /// Control-plane sharding for the master under test
    /// ([`ShardSpec::Auto`] keeps the single-shard layout).
    pub shards: ShardSpec,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            seed: 1,
            ttis: 5_000,
            warmup: 200,
            n_enbs: 2,
            ues_per_enb: 3,
            report_period: 5,
            agent_crash_prob: 0.0015,
            master_crash_prob: 0.0008,
            master_outage: (60, 140),
            stall_prob: 0.002,
            stall_len: (10, 60),
            wire_prob: 0.004,
            wire_len: (20, 80),
            wire: WireFaults {
                corrupt_prob: 0.05,
                truncate_prob: 0.03,
                duplicate_prob: 0.05,
                insert_prob: 0.03,
            },
            delegation_prob: 0.005,
            rollout_prob: 0.0,
            rollout_window: 80,
            queue_cap: 64,
            grace: 250,
            inject_violation_at: None,
            shards: ShardSpec::Auto,
        }
    }
}

/// What the engine injected over one run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FaultLog {
    pub agent_crashes: u64,
    pub master_crashes: u64,
    pub master_restarts: u64,
    pub stalls: u64,
    pub wire_windows: u64,
    pub delegations: u64,
    pub rollouts: u64,
}

/// Outcome of one chaos run. Bit-identical across replays of the same
/// [`ChaosConfig`]: every field (including `digest`) is derived from the
/// seeded schedule and the deterministic simulation, never from wall
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChaosReport {
    pub seed: u64,
    pub ttis: u64,
    pub faults: FaultLog,
    /// Violations recorded (capped; `violations_total` counts all).
    pub violations: Vec<Violation>,
    pub violations_total: u64,
    /// FNV digest of the end-state observables (per-UE delivered-bit /
    /// queue / HARQ counters in attach order) folded with the fault log
    /// and the violation count. Two runs of the same config — serial,
    /// under a campaign pool, or in another process — must produce the
    /// same digest.
    pub digest: u64,
    /// Cumulative downlink goodput across every UE (bits, deterministic).
    pub dl_delivered_bits: u64,
    /// Cumulative uplink goodput across every UE (bits, deterministic).
    pub ul_delivered_bits: u64,
}

impl ChaosReport {
    pub fn pass(&self) -> bool {
        self.violations_total == 0
    }
}

/// Measurement-only side channel of a chaos run: wall-clock facts that
/// legitimately differ between replays and therefore live *outside* the
/// bit-identical [`ChaosReport`]. Campaign KPI distributions are built
/// from these.
#[derive(Debug, Clone)]
pub struct ChaosTelemetry {
    /// TTI deadline-budget percentiles over the whole run (harness-side).
    pub budget: flexran::types::budget::BudgetStats,
}

fn fnv(h: &mut u64, v: u64) {
    for b in v.to_le_bytes() {
        *h ^= b as u64;
        *h = h.wrapping_mul(0x100000001b3);
    }
}

fn chaos_agent_config() -> AgentConfig {
    AgentConfig {
        initial_dl_scheduler: Some("remote-stub".into()),
        sync_period: 1,
        liveness: LivenessConfig {
            heartbeat_period: 5,
            liveness_timeout: 40,
            ..LivenessConfig::default()
        },
        ..AgentConfig::default()
    }
}

fn register_scheduler(sim: &mut SimHarness) {
    sim.master_mut()
        .register_app(Box::new(CentralizedScheduler::new(
            3,
            Box::new(RoundRobinScheduler::new()),
        )));
}

fn roll(rng: &mut StdRng, p: f64) -> bool {
    p > 0.0 && rng.random::<f64>() < p
}

fn draw_len(rng: &mut StdRng, (lo, hi): (u64, u64)) -> u64 {
    if hi <= lo {
        lo
    } else {
        rng.random_range(lo..=hi)
    }
}

/// Run one seeded chaos schedule to completion and report.
pub fn run_chaos(config: &ChaosConfig) -> ChaosReport {
    run_chaos_instrumented(config).0
}

/// Like [`run_chaos`], but also returns the measurement-only
/// [`ChaosTelemetry`] (wall-clock TTI-budget percentiles). The report
/// stays bit-identical across replays; the telemetry does not.
pub fn run_chaos_instrumented(config: &ChaosConfig) -> (ChaosReport, ChaosTelemetry) {
    let sim_cfg = SimConfig {
        uplink: LinkConfig {
            queue_cap: config.queue_cap,
            ..LinkConfig::ideal()
        },
        downlink: LinkConfig {
            queue_cap: config.queue_cap,
            ..LinkConfig::ideal()
        },
        master: TaskManagerConfig {
            liveness_timeout: 40,
            journal_snapshot_every: 8,
            shards: config.shards,
            ..TaskManagerConfig::default()
        },
        seed: config.seed,
        workers: None,
        tti_budget_ns: flexran::types::budget::DEFAULT_TTI_BUDGET_NS,
    };
    let mut sim = SimHarness::new(sim_cfg);
    let mut enbs = Vec::new();
    let mut ues = Vec::new();
    for i in 1..=config.n_enbs {
        let enb = sim.add_enb_with_faults(
            EnbConfig::single_cell(EnbId(i)),
            chaos_agent_config(),
            EnbParams::default(),
            None,
            FaultHandle::new(config.seed.wrapping_mul(0x9E37_79B9).wrapping_add(i as u64)),
        );
        for _ in 0..config.ues_per_enb {
            let ue = sim.add_ue(enb, CellId(0), SliceId::MNO, 0, UeRadioSpec::FixedCqi(12));
            sim.set_dl_traffic(ue, Box::new(CbrSource::new(BitRate::from_mbps(1))));
            ues.push(ue);
        }
        enbs.push(enb);
    }
    register_scheduler(&mut sim);
    sim.run(5);
    for &enb in &enbs {
        sim.master_mut()
            .request_stats(
                enb,
                ReportConfig {
                    report_type: ReportType::Periodic {
                        period: config.report_period,
                    },
                    flags: ReportFlags::ALL,
                },
            )
            .expect("session exists after warmup hellos");
    }
    sim.run(config.warmup.saturating_sub(5));

    let n = enbs.len();
    let mut rng = StdRng::seed_from_u64(config.seed);
    let mut oracles = Oracles::new(config.seed, config.grace, config.inject_violation_at, n);
    let mut log = FaultLog::default();
    let chaos_start = sim.now().0;
    // Per-agent TTI of the most recent fault activity; refreshed every
    // TTI a window is open, so the consistency grace period counts from
    // the *end* of each disturbance.
    let mut disturb = vec![chaos_start; n];
    // Whether the agent's link has been loss-free for the entire run
    // (no crash purges, no wire faults): gates exact conservation.
    let mut lossless = vec![true; n];
    let mut stall_until: Vec<Option<u64>> = vec![None; n];
    let mut wire_until: Vec<Option<u64>> = vec![None; n];
    let mut master_up_at: Option<u64> = None;

    for _ in 0..config.ttis {
        let now = sim.now().0;

        // Expire / refresh the master outage.
        if sim.master_down() {
            for d in disturb.iter_mut() {
                *d = now;
            }
            if master_up_at.is_some_and(|at| now >= at) {
                sim.restart_master().expect("journal recovery");
                register_scheduler(&mut sim);
                master_up_at = None;
                log.master_restarts += 1;
            }
        }

        // Expire / refresh per-agent windows.
        for i in 0..n {
            let enb = enbs[i];
            if let Some(until) = stall_until[i] {
                disturb[i] = now;
                if now >= until {
                    sim.agent_mut(enb).expect("present").set_stalled(false);
                    stall_until[i] = None;
                }
            }
            if let Some(until) = wire_until[i] {
                disturb[i] = now;
                if now >= until {
                    if let Some(h) = sim.fault_handle(enb) {
                        h.set_config(FaultConfig::default());
                    }
                    wire_until[i] = None;
                }
            }
        }

        // Draw new faults. The draw order is fixed (master first, then
        // agents in topology order), so the whole schedule replays from
        // the seed.
        if !sim.master_down() && roll(&mut rng, config.master_crash_prob) {
            sim.kill_master();
            master_up_at = Some(now + draw_len(&mut rng, config.master_outage));
            log.master_crashes += 1;
            for (d, l) in disturb.iter_mut().zip(lossless.iter_mut()) {
                *d = now;
                *l = false; // dead-socket purges lose in-flight traffic
            }
        }
        for i in 0..n {
            let enb = enbs[i];
            if roll(&mut rng, config.agent_crash_prob) {
                sim.crash_agent(enb).expect("present");
                stall_until[i] = None; // a restarted process is not stalled
                disturb[i] = now;
                lossless[i] = false;
                log.agent_crashes += 1;
            }
            if stall_until[i].is_none() && roll(&mut rng, config.stall_prob) {
                sim.agent_mut(enb).expect("present").set_stalled(true);
                stall_until[i] = Some(now + draw_len(&mut rng, config.stall_len));
                disturb[i] = now;
                log.stalls += 1;
            }
            if wire_until[i].is_none() && roll(&mut rng, config.wire_prob) {
                if let Some(h) = sim.fault_handle(enb) {
                    h.set_config(FaultConfig {
                        wire: Some(config.wire),
                        ..FaultConfig::default()
                    });
                }
                wire_until[i] = Some(now + draw_len(&mut rng, config.wire_len));
                disturb[i] = now;
                lossless[i] = false;
                log.wire_windows += 1;
            }
            if !sim.master_down() && roll(&mut rng, config.delegation_prob) {
                // Cached-only push (never activated): exercises the
                // delegation transfer and its journal replay without
                // changing what schedules the cells.
                let _ = sim.master_mut().push_vsf(
                    enb,
                    VsfPush {
                        module: "mac".into(),
                        vsf: "dl_ue_scheduler".into(),
                        name: format!("chaos-{}", log.delegations),
                        artifact: VsfArtifact::Dsl {
                            source: "priority = cqi\n".into(),
                        },
                        signature: vec![],
                    },
                    true,
                );
                log.delegations += 1;
            }
        }

        // Fleet-config rollouts under fire. Drawn after the per-agent
        // faults so a zero probability leaves the legacy fault stream
        // untouched. Only one rollout can be in flight; steady-state
        // phases (idle / converged / rolled-back) accept a new apply.
        if config.rollout_prob > 0.0 && !sim.master_down() && roll(&mut rng, config.rollout_prob) {
            let in_flight = matches!(
                sim.master().rollout_status().phase,
                RolloutPhase::Draft
                    | RolloutPhase::Canary
                    | RolloutPhase::Fleet
                    | RolloutPhase::RollingBack
            );
            if !in_flight {
                let canary = enbs[rng.random_range(0..n)];
                // Alternate between two local schedulers so consecutive
                // bundles differ (distinct signatures on the wire).
                let sched = if log.rollouts % 2 == 0 {
                    "round-robin"
                } else {
                    "proportional-fair"
                };
                let _ = sim.master_mut().apply_config_bundle(
                    String::new(),
                    sched.to_string(),
                    sched.to_string(),
                    canary,
                    RolloutConfig {
                        observation_window: config.rollout_window,
                        ..RolloutConfig::default()
                    },
                );
                log.rollouts += 1;
            }
        }

        sim.step();
        oracles.check(&sim, &enbs, &disturb, &lossless);
    }

    // End-state digest: per-UE observables in attach order, then the
    // fault log and the verdict. Everything folded here is derived from
    // the seeded schedule, so replays (serial, pooled, cross-process)
    // reproduce it bit-identically.
    let mut digest = 0xcbf29ce484222325u64;
    let mut dl_delivered_bits = 0u64;
    let mut ul_delivered_bits = 0u64;
    for &ue in &ues {
        let Some(s) = sim.ue_stats(ue) else {
            fnv(&mut digest, u64::MAX);
            continue;
        };
        fnv(&mut digest, s.dl_delivered_bits);
        fnv(&mut digest, s.ul_delivered_bits);
        fnv(&mut digest, s.dl_queue_bytes.as_u64());
        fnv(&mut digest, s.cqi.0 as u64);
        fnv(&mut digest, s.harq_tx + s.harq_retx);
        dl_delivered_bits += s.dl_delivered_bits;
        ul_delivered_bits += s.ul_delivered_bits;
    }
    for v in [
        log.agent_crashes,
        log.master_crashes,
        log.master_restarts,
        log.stalls,
        log.wire_windows,
        log.delegations,
        log.rollouts,
        oracles.total,
    ] {
        fnv(&mut digest, v);
    }

    let report = ChaosReport {
        seed: config.seed,
        ttis: config.ttis,
        faults: log,
        violations_total: oracles.total,
        violations: oracles.violations,
        digest,
        dl_delivered_bits,
        ul_delivered_bits,
    };
    let telemetry = ChaosTelemetry {
        budget: sim.budget_stats(),
    };
    (report, telemetry)
}
