//! Chaos-engine acceptance: clean soaks, bit-identical replay-by-seed,
//! and the negative control (an injected violation must reproduce with
//! the exact same seed and TTI on every run).

use flexran::prelude::ShardSpec;
use flexran_chaos::{run_chaos, ChaosConfig};

fn quick(seed: u64) -> ChaosConfig {
    ChaosConfig {
        seed,
        ttis: 1_200,
        ..ChaosConfig::default()
    }
}

#[test]
fn quick_soak_is_clean_and_actually_injects_faults() {
    let mut faults = flexran_chaos::FaultLog::default();
    for seed in 0..4 {
        let report = run_chaos(&quick(seed));
        assert!(
            report.pass(),
            "seed {seed} violated invariants:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        faults.agent_crashes += report.faults.agent_crashes;
        faults.master_crashes += report.faults.master_crashes;
        faults.stalls += report.faults.stalls;
        faults.wire_windows += report.faults.wire_windows;
        faults.delegations += report.faults.delegations;
    }
    // The clean verdict must come from surviving faults, not dodging them.
    assert!(faults.agent_crashes > 0, "no agent crashes injected");
    assert!(faults.master_crashes > 0, "no master crashes injected");
    assert!(faults.stalls > 0, "no stalls injected");
    assert!(faults.wire_windows > 0, "no wire-fault windows injected");
    assert!(faults.delegations > 0, "no delegation pushes injected");
}

#[test]
fn sharded_soak_is_clean_and_matches_the_single_shard_run() {
    // The sharded control plane must survive the same fault schedule
    // with zero violations (including the shard-ownership oracle), and
    // — since sharding is behaviour-transparent — produce the exact
    // same fault log and verdict as the single-shard run of the seed.
    let base = run_chaos(&quick(11));
    for shards in [ShardSpec::Fixed(3), ShardSpec::PerAgent] {
        let cfg = ChaosConfig {
            shards,
            ..quick(11)
        };
        let report = run_chaos(&cfg);
        assert!(
            report.pass(),
            "sharded ({shards:?}) run violated invariants:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        assert_eq!(
            report.faults, base.faults,
            "shard spec {shards:?} changed the fault schedule"
        );
    }
}

#[test]
fn replay_by_seed_is_bit_identical() {
    let a = run_chaos(&quick(42));
    let b = run_chaos(&quick(42));
    assert_eq!(a, b, "same seed must reproduce the identical report");
    let c = run_chaos(&quick(43));
    assert_ne!(
        a.faults, c.faults,
        "different seeds should draw different schedules"
    );
}

#[test]
fn negative_control_reproduces_seed_and_tti_exactly() {
    let cfg = ChaosConfig {
        inject_violation_at: Some(600),
        ..quick(7)
    };
    let a = run_chaos(&cfg);
    assert!(!a.pass(), "the injected violation must be detected");
    let first = &a.violations[0];
    assert_eq!(first.oracle, "prb-capacity");
    assert!(
        first.tti >= 600,
        "violation fired at {} before the injection point",
        first.tti
    );
    assert!(first.detail.contains("negative control"));
    // The whole point: the violation replays bit-identically from the
    // seed — same TTI, same oracle, same detail.
    let b = run_chaos(&cfg);
    assert_eq!(a.violations, b.violations);
    assert_eq!(a.violations_total, b.violations_total);
}

#[test]
fn rollout_scenario_survives_the_full_fault_mix() {
    // The `rollout` fault scenario: fleet-config rollouts drawn into the
    // standard multi-layer fault stream, so canary pushes get corrupted
    // on the wire, canary agents crash mid-observation and the master
    // dies (and journal-recovers) mid-phase. The config-provenance
    // oracle checks every TTI that no agent ever runs a bundle the
    // master never issued and that resting rollouts land every quiesced
    // agent on the prescribed version.
    let mut rollouts = 0;
    let mut master_crashes = 0;
    let mut agent_crashes = 0;
    for seed in 0..6 {
        let cfg = ChaosConfig {
            rollout_prob: 0.01,
            rollout_window: 60,
            ttis: 2_000,
            ..quick(seed)
        };
        let report = run_chaos(&cfg);
        assert!(
            report.pass(),
            "seed {seed} violated invariants:\n{}",
            report
                .violations
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join("\n")
        );
        rollouts += report.faults.rollouts;
        master_crashes += report.faults.master_crashes;
        agent_crashes += report.faults.agent_crashes;
        // Replay determinism holds with the rollout stream enabled.
        assert_eq!(run_chaos(&cfg), report, "seed {seed} must replay");
    }
    // The verdict must come from rollouts actually riding the faults.
    assert!(rollouts >= 6, "only {rollouts} rollouts drawn across seeds");
    assert!(master_crashes > 0, "no master crash hit a rollout run");
    assert!(agent_crashes > 0, "no agent crash hit a rollout run");
}

#[test]
fn lossless_schedule_holds_exact_command_conservation() {
    // No crashes and no wire faults: the exact conservation equation
    // (tx == rx + in-flight) is checked every single TTI, under stalls
    // and delegation churn.
    let cfg = ChaosConfig {
        agent_crash_prob: 0.0,
        master_crash_prob: 0.0,
        wire_prob: 0.0,
        stall_prob: 0.004,
        delegation_prob: 0.01,
        ..quick(11)
    };
    let report = run_chaos(&cfg);
    assert!(
        report.pass(),
        "lossless run violated invariants:\n{}",
        report
            .violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
    assert!(report.faults.stalls > 0);
    assert_eq!(report.faults.master_crashes, 0);
}
