//! Fuzzing the master's message handler.
//!
//! The master's inbound surface is whatever a transport's `try_recv`
//! yields from network bytes. This harness drives that exact path with
//! three hostile frame classes — raw garbage bytes, bit-flipped valid
//! envelopes, and structurally valid messages carrying hostile field
//! values (undeclared cells, null RNTIs, master-bound kinds arriving
//! inbound) — and demands:
//!
//! 1. no panic and no hang, ever;
//! 2. bounded RIB growth: validation keeps phantom state out, so the
//!    forest only holds cells inside each agent's declared range and
//!    never a null-RNTI UE;
//! 3. the journal stays coherent: a crash at any point after the hostile
//!    traffic recovers to a RIB identical to the live one.

use std::collections::VecDeque;

use proptest::prelude::*;

use flexran_controller::master::{MasterController, TaskManagerConfig};
use flexran_proto::category::ByteCounters;
use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::stats::{StatsReply, UeReport};
use flexran_proto::messages::{
    DlSchedulingCommand, EventNotification, FlexranMessage, Header, Hello, SubframeTrigger,
};
use flexran_proto::transport::Transport;
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::Result;

/// A transport preloaded with adversarial inbound frames. `try_recv`
/// decodes them exactly the way the real channel/TCP/sim transports do,
/// so the master sees the same error/message sequence it would see from
/// a hostile or corrupted peer. Outbound messages are swallowed.
struct FuzzTransport {
    inbound: VecDeque<Vec<u8>>,
    counters: ByteCounters,
}

impl Transport for FuzzTransport {
    fn send(&mut self, _header: Header, _msg: &FlexranMessage) -> Result<()> {
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        let Some(bytes) = self.inbound.pop_front() else {
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&bytes)?;
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.counters
    }
}

const KINDS: [EventKind; 10] = [
    EventKind::RachAttempt,
    EventKind::UeAttached,
    EventKind::AttachFailed,
    EventKind::UeDetached,
    EventKind::SchedulingRequest,
    EventKind::MeasurementReport,
    EventKind::HandoverExecuted,
    EventKind::DecisionMissedDeadline,
    EventKind::AgentDown,
    EventKind::AgentUp,
];

/// Structurally valid messages with hostile field values.
fn hostile_message() -> impl Strategy<Value = FlexranMessage> {
    prop_oneof![
        (any::<u32>(), 0u32..4).prop_map(|(id, n)| {
            FlexranMessage::Hello(Hello {
                enb_id: EnbId(id % 5),
                n_cells: n,
                capabilities: vec!["dl_scheduling".into()],
                applied_config: 0,
            })
        }),
        (
            any::<u32>(),
            any::<u64>(),
            proptest::collection::vec((any::<u16>(), any::<u16>(), any::<u8>()), 0..4),
        )
            .prop_map(|(id, tti, ues)| {
                FlexranMessage::StatsReply(StatsReply {
                    enb_id: EnbId(id % 5),
                    tti,
                    cells: vec![],
                    ues: ues
                        .into_iter()
                        .map(|(rnti, cell, cqi)| UeReport {
                            rnti,
                            cell,
                            wideband_cqi: cqi,
                            ..UeReport::default()
                        })
                        .collect(),
                })
            }),
        (
            any::<u32>(),
            0usize..10,
            any::<u16>(),
            any::<u16>(),
            any::<u64>(),
        )
            .prop_map(|(id, k, cell, rnti, tti)| {
                FlexranMessage::EventNotification(EventNotification {
                    enb_id: EnbId(id % 5),
                    kind: KINDS[k],
                    cell,
                    rnti,
                    ue_tag: id,
                    tti,
                    ..EventNotification::default()
                })
            }),
        (any::<u32>(), any::<u64>()).prop_map(|(id, tti)| {
            FlexranMessage::SubframeTrigger(SubframeTrigger {
                enb_id: EnbId(id % 5),
                sfn: (tti / 10 % 1024) as u16,
                sf: (tti % 10) as u8,
                tti,
            })
        }),
        // A master-bound kind arriving inbound: never legal from an
        // agent, must be ignored without panicking.
        any::<u32>().prop_map(|id| {
            FlexranMessage::DlSchedulingCommand(DlSchedulingCommand {
                enb_id: EnbId(id % 5),
                ..DlSchedulingCommand::default()
            })
        }),
    ]
}

/// One adversarial frame: raw garbage, a bit-flipped valid envelope, or
/// a hostile-valued valid message.
fn frame() -> impl Strategy<Value = Vec<u8>> {
    prop_oneof![
        proptest::collection::vec(any::<u8>(), 0..96),
        (hostile_message(), any::<u32>(), any::<usize>(), 0u8..8).prop_map(
            |(msg, xid, pos, bit)| {
                let mut bytes = msg.encode(Header::with_xid(xid)).to_vec();
                let at = pos % bytes.len().max(1);
                if let Some(b) = bytes.get_mut(at) {
                    *b ^= 1 << bit;
                }
                bytes
            }
        ),
        (hostile_message(), any::<u32>())
            .prop_map(|(msg, xid)| msg.encode(Header::with_xid(xid)).to_vec()),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn master_survives_adversarial_frames(
        frames in proptest::collection::vec(frame(), 1..40),
        n_cycles in 4u64..12,
    ) {
        let config = TaskManagerConfig {
            liveness_timeout: 3,
            journal_snapshot_every: 2,
            ..TaskManagerConfig::default()
        };
        let mut master = MasterController::new(config);
        master.add_agent(Box::new(FuzzTransport {
            inbound: frames.into(),
            counters: ByteCounters::new(),
        }));
        for t in 0..n_cycles {
            master.run_cycle(Tti(t));
        }

        // Validation keeps the forest inside the declared topology even
        // though the traffic was hostile.
        let live_rib = master.merged_rib();
        for agent in live_rib.agents() {
            prop_assert!(
                agent.cells().len() as u64 <= u64::from(agent.n_cells),
                "agent {:?} grew {} cells but declared {}",
                agent.enb_id, agent.cells().len(), agent.n_cells
            );
            for cell in agent.cells() {
                prop_assert!(u32::from(cell.cell_id.0) < agent.n_cells);
                for u in cell.ues() {
                    prop_assert!(u.rnti.0 != 0, "null-RNTI UE folded into the RIB");
                }
            }
        }

        // The journal must recover to exactly the live forest, no matter
        // what the hostile traffic did to it. `stale_since` is session
        // state, not forest data: recovery marks every agent stale at the
        // recovery TTI (no sessions are live yet) while the live master
        // may have opened the epoch earlier via its liveness timeout, so
        // the comparison excludes it.
        let journal = master.journal_bytes().expect("journaling is on");
        let recovered = MasterController::recover(config, &journal, Tti(n_cycles))
            .expect("recovery never fails on a journal the master itself wrote");
        let rec_rib = recovered.merged_rib();
        prop_assert_eq!(rec_rib.n_agents(), live_rib.n_agents());
        for (live, rec) in live_rib.agents().zip(rec_rib.agents()) {
            prop_assert_eq!(live.enb_id, rec.enb_id);
            prop_assert_eq!(&live.capabilities, &rec.capabilities);
            prop_assert_eq!(live.n_cells, rec.n_cells);
            prop_assert_eq!(live.connected_at, rec.connected_at);
            prop_assert_eq!(live.last_sync, rec.last_sync);
            prop_assert_eq!(live.cells(), rec.cells());
        }
    }
}
