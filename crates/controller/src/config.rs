//! Versioned fleet configuration rollout (DESIGN.md §11).
//!
//! Operators reconfigure a fleet by staging a signed [`ConfigBundle`]
//! (policy document + VSF selection + scheduler choice) through the
//! northbound facade. The [`RolloutController`] then drives a
//! KPI-gated canary rollout as a deterministic state machine, advanced
//! at most one transition per master write cycle:
//!
//! ```text
//! Draft ──────▶ Canary ──────▶ Fleet ──────▶ Converged
//!   (baseline)    │ regression     │ regression
//!                 ▼                ▼
//!              RollingBack ──▶ RolledBack
//! ```
//!
//! * **Draft** — the bundle is staged; a baseline KPI window is measured
//!   over the whole fleet before anything is pushed.
//! * **Canary** — the bundle is pushed to one canary agent (paced
//!   retries until the agent's advertised signature matches — a push
//!   lost to a faulty link is re-sent, not mourned), then observed for
//!   one window against the baseline.
//! * **Fleet** — the canary passed: push to every remaining agent, wait
//!   for all signatures to converge, observe one more window.
//! * **Converged** — the bundle is the fleet's last converged version;
//!   drift (an agent advertising any other signature, e.g. after a
//!   crash-restart wiped its soft state) draws a paced re-push.
//! * **RollingBack / RolledBack** — any KPI regression or explicit
//!   [`RolloutController::abort`] pushes the last converged bundle back
//!   to every agent and waits for the fleet to land on it.
//!
//! ## KPI oracles
//!
//! Regression during an observation window is any of ([`RolloutConfig`]):
//! goodput (PRBs delivered, from RIB cell reports) dropping more than
//! `max_goodput_drop_pct` below the Draft baseline; more than
//! `max_failovers` session-down edges among in-scope agents; more than
//! `max_rejected_updates` semantically-rejected RIB updates; more than
//! `max_over_budget_ttis` deadline-budget misses. The last is derived
//! from wall-clock measurements and therefore **disabled by default**
//! (`u64::MAX`): enabling it trades bit-determinism for latency safety,
//! which only real-time deployments should do.
//!
//! ## Durability
//!
//! Every mutation re-serializes the whole controller ([`RolloutController::to_bytes`])
//! into a `TAG_ROLLOUT` journal record, so
//! [`MasterController::recover`](crate::master::MasterController::recover)
//! resumes the state machine where the crash left it. Observation
//! windows are deliberately *not* persisted: KPI counters restart with
//! the master process, so a recovered master re-opens the current
//! phase's window rather than comparing incommensurable epochs.

use std::collections::BTreeMap;

use flexran_proto::messages::ConfigBundlePb;
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

/// The versioned fleet configuration bundle (the wire type doubles as
/// the store type — one codec, one signature scheme).
pub type ConfigBundle = ConfigBundlePb;

/// Paced-retry period (master TTIs) for bundle pushes that have not been
/// acknowledged by signature yet — same cadence as the session-recovery
/// resync nudge, for the same reason: a push (or its ack) lost on a
/// faulty link must be retried, not spam the agent every cycle.
pub const ROLLOUT_PUSH_RETRY_PERIOD: u64 = 25;

/// Rollout history entries kept (oldest dropped first). Bounds journal
/// record size; transitions are rare, so this spans many rollouts.
const HISTORY_CAP: usize = 512;

/// Serialized-state format version.
const CODEC_VERSION: u8 = 1;

/// Where the rollout state machine stands.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutPhase {
    /// No rollout has ever been staged.
    Idle,
    /// Bundle staged; measuring the fleet-wide KPI baseline.
    Draft,
    /// Bundle pushed to the canary agent; observing.
    Canary,
    /// Canary passed; bundle pushed fleet-wide; observing.
    Fleet,
    /// The active bundle is the fleet's converged configuration.
    Converged,
    /// Regression or abort: pushing the last converged bundle back out.
    RollingBack,
    /// The fleet is back on the last converged bundle.
    RolledBack,
}

impl RolloutPhase {
    fn code(self) -> u8 {
        match self {
            RolloutPhase::Idle => 0,
            RolloutPhase::Draft => 1,
            RolloutPhase::Canary => 2,
            RolloutPhase::Fleet => 3,
            RolloutPhase::Converged => 4,
            RolloutPhase::RollingBack => 5,
            RolloutPhase::RolledBack => 6,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            0 => RolloutPhase::Idle,
            1 => RolloutPhase::Draft,
            2 => RolloutPhase::Canary,
            3 => RolloutPhase::Fleet,
            4 => RolloutPhase::Converged,
            5 => RolloutPhase::RollingBack,
            6 => RolloutPhase::RolledBack,
            other => {
                return Err(FlexError::Codec(format!(
                    "unknown rollout phase code {other}"
                )))
            }
        })
    }
}

impl std::fmt::Display for RolloutPhase {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RolloutPhase::Idle => "idle",
            RolloutPhase::Draft => "draft",
            RolloutPhase::Canary => "canary",
            RolloutPhase::Fleet => "fleet",
            RolloutPhase::Converged => "converged",
            RolloutPhase::RollingBack => "rolling-back",
            RolloutPhase::RolledBack => "rolled-back",
        })
    }
}

/// KPI gate thresholds for one rollout.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutConfig {
    /// Master TTIs of KPI observation per gate (baseline, canary, fleet).
    pub observation_window: u64,
    /// Maximum tolerated goodput drop against the Draft baseline, in
    /// percent (50 = the window must deliver at least half the baseline).
    pub max_goodput_drop_pct: u64,
    /// Session-down edges tolerated among in-scope agents per window.
    pub max_failovers: u64,
    /// Semantically-rejected RIB updates tolerated per window
    /// (master-wide — a bad config corrupting reports shows up here).
    pub max_rejected_updates: u64,
    /// Over-budget TTIs tolerated per window. Wall-clock derived and
    /// therefore non-deterministic: disabled by default (`u64::MAX`);
    /// opt in only where latency safety outranks bit-determinism.
    pub max_over_budget_ttis: u64,
}

impl Default for RolloutConfig {
    fn default() -> Self {
        RolloutConfig {
            observation_window: 100,
            max_goodput_drop_pct: 50,
            max_failovers: 0,
            max_rejected_updates: 0,
            max_over_budget_ttis: u64::MAX,
        }
    }
}

/// What happened, for the journaled audit history.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RolloutEventKind {
    /// Bundle staged; rollout entered Draft.
    Applied,
    /// Bundle pushed to the canary agent.
    CanaryPushed,
    /// Canary advertises the bundle signature; observation opened.
    CanaryApplied,
    /// Canary window passed; bundle pushed fleet-wide.
    FleetPushed,
    /// Whole fleet advertises the signature; observation opened.
    FleetApplied,
    /// Fleet window passed; bundle is the converged configuration.
    Converged,
    /// A KPI gate tripped (`enb` is the offending agent, 0 = fleet-wide).
    Regression,
    /// An agent refused the bundle (validation failure at apply).
    Rejected,
    /// Rollback pushes went out towards the last converged version.
    RollbackPushed,
    /// The fleet landed back on the last converged version.
    RolledBack,
    /// Operator abort.
    Aborted,
}

impl std::fmt::Display for RolloutEventKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            RolloutEventKind::Applied => "applied",
            RolloutEventKind::CanaryPushed => "canary-pushed",
            RolloutEventKind::CanaryApplied => "canary-applied",
            RolloutEventKind::FleetPushed => "fleet-pushed",
            RolloutEventKind::FleetApplied => "fleet-applied",
            RolloutEventKind::Converged => "converged",
            RolloutEventKind::Regression => "regression",
            RolloutEventKind::Rejected => "rejected",
            RolloutEventKind::RollbackPushed => "rollback-pushed",
            RolloutEventKind::RolledBack => "rolled-back",
            RolloutEventKind::Aborted => "aborted",
        })
    }
}

impl RolloutEventKind {
    fn code(self) -> u8 {
        match self {
            RolloutEventKind::Applied => 0,
            RolloutEventKind::CanaryPushed => 1,
            RolloutEventKind::CanaryApplied => 2,
            RolloutEventKind::FleetPushed => 3,
            RolloutEventKind::FleetApplied => 4,
            RolloutEventKind::Converged => 5,
            RolloutEventKind::Regression => 6,
            RolloutEventKind::Rejected => 7,
            RolloutEventKind::RollbackPushed => 8,
            RolloutEventKind::RolledBack => 9,
            RolloutEventKind::Aborted => 10,
        }
    }

    fn from_code(code: u8) -> Result<Self> {
        Ok(match code {
            0 => RolloutEventKind::Applied,
            1 => RolloutEventKind::CanaryPushed,
            2 => RolloutEventKind::CanaryApplied,
            3 => RolloutEventKind::FleetPushed,
            4 => RolloutEventKind::FleetApplied,
            5 => RolloutEventKind::Converged,
            6 => RolloutEventKind::Regression,
            7 => RolloutEventKind::Rejected,
            8 => RolloutEventKind::RollbackPushed,
            9 => RolloutEventKind::RolledBack,
            10 => RolloutEventKind::Aborted,
            other => {
                return Err(FlexError::Codec(format!(
                    "unknown rollout event code {other}"
                )))
            }
        })
    }
}

/// One journaled rollout transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutEvent {
    pub tti: Tti,
    pub kind: RolloutEventKind,
    pub version: u64,
    /// The agent the event concerns (0 = the fleet).
    pub enb: EnbId,
}

/// Per-agent KPI sample the master assembles each write cycle, in
/// ascending agent-id order. All counters are cumulative.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AgentKpi {
    pub enb: EnbId,
    /// Goodput proxy: PRBs delivered, summed over the agent's cells
    /// (from the RIB's last cell reports).
    pub goodput: u64,
    /// The agent's session is currently considered down.
    pub down: bool,
    /// Applied-config signature the agent last advertised (0 = none).
    pub applied: u64,
}

/// Fleet-wide KPI sample for one write cycle.
#[derive(Debug, Clone, Copy)]
pub struct FleetKpi<'a> {
    /// Per-agent samples, ascending by agent id.
    pub agents: &'a [AgentKpi],
    /// Master-wide rejected RIB updates (cumulative).
    pub rejected_updates: u64,
    /// Master-wide over-budget cycles (cumulative; wall-clock derived).
    pub over_budget_ttis: u64,
}

/// A bundle acknowledgement the master received this cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BundleAck {
    pub enb: EnbId,
    pub version: u64,
    pub signature: u64,
    pub ok: bool,
}

/// What the master must do for the rollout this cycle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RolloutAction {
    /// Push `bundle` to `enb` (routed through the owning shard's
    /// mailbox, like every other cross-shard command).
    Push { enb: EnbId, bundle: ConfigBundle },
}

/// Northbound-visible rollout status snapshot.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RolloutStatus {
    pub phase: RolloutPhase,
    /// Version being rolled out (0 = none).
    pub active_version: u64,
    /// Last fleet-converged version (0 = none; the rollback target).
    pub last_converged: u64,
    pub canary: EnbId,
    /// History entries recorded so far.
    pub events: usize,
}

/// The deterministic rollout state machine plus the versioned bundle
/// store. Owned by the northbound facade; stepped by the master once per
/// write cycle, strictly serially (it reads per-agent KPIs that span
/// shards, so it must never run inside a shard's RIB slot).
// lint:serial-only — fleet-wide state; stepped at the cycle barrier only
#[derive(Debug, Clone)]
pub struct RolloutController {
    cfg: RolloutConfig,
    phase: RolloutPhase,
    /// Version being rolled out (0 = none).
    active: u64,
    /// Last fleet-converged version (0 = none).
    last_converged: u64,
    canary: EnbId,
    bundles: BTreeMap<u64, ConfigBundle>,
    history: Vec<RolloutEvent>,
    /// Per-agent baseline goodput over one Draft window (persisted — the
    /// canary gate is meaningless without it).
    baseline: BTreeMap<EnbId, u64>,
    // ----- volatile observation sub-state (reset on recovery) -----
    /// When the current observation window opened (None = waiting for
    /// the pushed signatures to converge).
    observe_from: Option<Tti>,
    /// Cumulative goodput per agent at window open.
    window_start: BTreeMap<EnbId, u64>,
    window_start_rejected: u64,
    window_start_over_budget: u64,
    /// Down edges among in-scope agents observed this window.
    window_failovers: u64,
    /// Down state last cycle (edge detection).
    prev_down: BTreeMap<EnbId, bool>,
    /// Last push TTI per agent (paced retries).
    pushed_at: BTreeMap<EnbId, Tti>,
    /// Paced drift re-pushes issued (diagnostics).
    drift_repushes: u64,
    /// State changed since the last `take_dirty` (journal trigger).
    dirty: bool,
}

impl Default for RolloutController {
    fn default() -> Self {
        Self::new()
    }
}

impl RolloutController {
    pub fn new() -> Self {
        RolloutController {
            cfg: RolloutConfig::default(),
            phase: RolloutPhase::Idle,
            active: 0,
            last_converged: 0,
            canary: EnbId(0),
            bundles: BTreeMap::new(),
            history: Vec::new(),
            baseline: BTreeMap::new(),
            observe_from: None,
            window_start: BTreeMap::new(),
            window_start_rejected: 0,
            window_start_over_budget: 0,
            window_failovers: 0,
            prev_down: BTreeMap::new(),
            pushed_at: BTreeMap::new(),
            drift_repushes: 0,
            dirty: false,
        }
    }

    /// Stage a new bundle and start its rollout (→ Draft). The bundle is
    /// signed here: the rollout controller is the fleet's configuration
    /// authority. Errors while another rollout is in flight.
    pub fn apply(
        &mut self,
        now: Tti,
        policy_yaml: String,
        vsf_key: String,
        scheduler: String,
        canary: EnbId,
        cfg: RolloutConfig,
    ) -> Result<u64> {
        if matches!(
            self.phase,
            RolloutPhase::Draft
                | RolloutPhase::Canary
                | RolloutPhase::Fleet
                | RolloutPhase::RollingBack
        ) {
            // lint:allow(alloc-reach) cold northbound error path, never per-TTI
            return Err(FlexError::Conflict(format!(
                "rollout of version {} is in flight ({})",
                self.active, self.phase
            )));
        }
        let version = self.bundles.keys().next_back().copied().unwrap_or(0) + 1;
        let bundle = ConfigBundle::signed(version, policy_yaml, vsf_key, scheduler);
        self.bundles.insert(version, bundle);
        self.cfg = cfg;
        self.active = version;
        self.canary = canary;
        self.set_phase(RolloutPhase::Draft);
        self.record(now, RolloutEventKind::Applied, version, EnbId(0));
        Ok(version)
    }

    /// Operator abort: roll back whatever the in-flight rollout already
    /// pushed. In Draft (nothing pushed yet) the rollout just ends.
    pub fn abort(&mut self, now: Tti) -> Result<()> {
        match self.phase {
            RolloutPhase::Draft => {
                self.record(now, RolloutEventKind::Aborted, self.active, EnbId(0));
                self.set_phase(RolloutPhase::RolledBack);
                Ok(())
            }
            RolloutPhase::Canary | RolloutPhase::Fleet => {
                self.record(now, RolloutEventKind::Aborted, self.active, EnbId(0));
                self.set_phase(RolloutPhase::RollingBack);
                Ok(())
            }
            phase => Err(FlexError::Conflict(format!(
                "no rollout in flight to abort (phase {phase})"
            ))),
        }
    }

    pub fn phase(&self) -> RolloutPhase {
        self.phase
    }

    pub fn status(&self) -> RolloutStatus {
        RolloutStatus {
            phase: self.phase,
            active_version: self.active,
            last_converged: self.last_converged,
            canary: self.canary,
            events: self.history.len(),
        }
    }

    pub fn history(&self) -> &[RolloutEvent] {
        &self.history
    }

    pub fn bundle(&self, version: u64) -> Option<&ConfigBundle> {
        self.bundles.get(&version)
    }

    pub fn active_version(&self) -> u64 {
        self.active
    }

    pub fn last_converged(&self) -> u64 {
        self.last_converged
    }

    /// Paced drift re-pushes issued so far (diagnostics).
    pub fn drift_repushes(&self) -> u64 {
        self.drift_repushes
    }

    /// Every signature this controller has ever issued. External
    /// conservation checks (chaos oracle #9) assert that no agent ever
    /// advertises a signature outside this set.
    pub fn issued_signatures(&self) -> Vec<u64> {
        self.bundles.values().map(|b| b.signature).collect()
    }

    /// Whether the master needs to step this controller at all (false
    /// until the first `apply` — the pre-rollout per-TTI cost is zero).
    pub fn is_engaged(&self) -> bool {
        self.phase != RolloutPhase::Idle
    }

    /// Whether state changed since the last call (journal trigger).
    pub fn take_dirty(&mut self) -> bool {
        std::mem::take(&mut self.dirty)
    }

    fn set_phase(&mut self, phase: RolloutPhase) {
        self.phase = phase;
        self.observe_from = None;
        self.window_start.clear();
        self.window_failovers = 0;
        self.prev_down.clear();
        self.pushed_at.clear();
        self.dirty = true;
    }

    fn record(&mut self, tti: Tti, kind: RolloutEventKind, version: u64, enb: EnbId) {
        if self.history.len() >= HISTORY_CAP {
            self.history.remove(0);
        }
        self.history.push(RolloutEvent {
            tti,
            kind,
            version,
            enb,
        });
        self.dirty = true;
    }

    /// Whether `enb` is in the KPI blast radius of the current phase.
    fn in_scope(&self, enb: EnbId) -> bool {
        match self.phase {
            RolloutPhase::Canary => enb == self.canary,
            RolloutPhase::Fleet => true,
            _ => false,
        }
    }

    fn open_window(&mut self, now: Tti, fleet: &FleetKpi<'_>) {
        self.observe_from = Some(now);
        self.window_start.clear();
        for a in fleet.agents {
            self.window_start.insert(a.enb, a.goodput);
        }
        self.window_start_rejected = fleet.rejected_updates;
        self.window_start_over_budget = fleet.over_budget_ttis;
        self.window_failovers = 0;
        self.prev_down.clear();
        for a in fleet.agents {
            self.prev_down.insert(a.enb, a.down);
        }
    }

    /// Push `version` to `enb` if its retry pacing allows, staging the
    /// action for the master.
    fn push_paced(
        &mut self,
        now: Tti,
        enb: EnbId,
        version: u64,
        actions: &mut Vec<RolloutAction>,
    ) -> bool {
        if self
            .pushed_at
            .get(&enb)
            .is_some_and(|at| now.0.saturating_sub(at.0) < ROLLOUT_PUSH_RETRY_PERIOD)
        {
            return false;
        }
        let Some(bundle) = self.bundles.get(&version) else {
            return false;
        };
        self.pushed_at.insert(enb, now);
        actions.push(RolloutAction::Push {
            enb,
            // lint:allow(alloc-reach) one bundle clone per paced push, 25-TTI pacing
            bundle: bundle.clone(),
        });
        true
    }

    /// Mid-window regression checks (failover edges, rejected updates,
    /// over-budget TTIs). Returns the offender (EnbId(0) = fleet-wide).
    fn window_regression(&mut self, fleet: &FleetKpi<'_>) -> Option<EnbId> {
        for a in fleet.agents {
            if !self.in_scope(a.enb) {
                continue;
            }
            let was_down = self.prev_down.insert(a.enb, a.down).unwrap_or(a.down);
            if a.down && !was_down {
                self.window_failovers += 1;
                if self.window_failovers > self.cfg.max_failovers {
                    return Some(a.enb);
                }
            }
        }
        if fleet
            .rejected_updates
            .saturating_sub(self.window_start_rejected)
            > self.cfg.max_rejected_updates
        {
            return Some(EnbId(0));
        }
        if fleet
            .over_budget_ttis
            .saturating_sub(self.window_start_over_budget)
            > self.cfg.max_over_budget_ttis
        {
            return Some(EnbId(0));
        }
        None
    }

    /// End-of-window goodput gate against the Draft baseline. Returns
    /// the first in-scope agent whose window fell below the floor.
    fn goodput_regression(&self, fleet: &FleetKpi<'_>) -> Option<EnbId> {
        let keep_pct = 100u64.saturating_sub(self.cfg.max_goodput_drop_pct);
        for a in fleet.agents {
            if !self.in_scope(a.enb) {
                continue;
            }
            let Some(&base) = self.baseline.get(&a.enb) else {
                continue; // joined after the baseline window: no gate
            };
            if base == 0 {
                continue;
            }
            let start = self.window_start.get(&a.enb).copied().unwrap_or(a.goodput);
            let delivered = a.goodput.saturating_sub(start);
            if delivered.saturating_mul(100) < base.saturating_mul(keep_pct) {
                return Some(a.enb);
            }
        }
        None
    }

    fn start_rollback(&mut self, now: Tti, offender: EnbId) {
        let version = self.active;
        self.record(now, RolloutEventKind::Regression, version, offender);
        self.set_phase(RolloutPhase::RollingBack);
    }

    /// The signature agents are expected to advertise once converged on
    /// `version` (0 means "no bundle" — factory state).
    fn signature_of(&self, version: u64) -> u64 {
        self.bundles.get(&version).map(|b| b.signature).unwrap_or(0)
    }

    /// Advance the state machine by at most one transition for this
    /// write cycle. `fleet` carries the cycle's KPI samples, `acks` the
    /// bundle acknowledgements that arrived; push work is appended to
    /// `actions` (cleared by the caller).
    pub fn step(
        &mut self,
        now: Tti,
        fleet: &FleetKpi<'_>,
        acks: &[BundleAck],
        actions: &mut Vec<RolloutAction>,
    ) {
        // An agent refusing the in-flight bundle is an immediate
        // regression: validation failed at the canary (or a fleet
        // member), so the version must not spread.
        if matches!(self.phase, RolloutPhase::Canary | RolloutPhase::Fleet) {
            let active_sig = self.signature_of(self.active);
            let refusal = acks
                .iter()
                .find(|a| a.signature == active_sig && !a.ok)
                .map(|a| a.enb);
            if let Some(enb) = refusal {
                self.record(now, RolloutEventKind::Rejected, self.active, enb);
                self.start_rollback(now, enb);
                return;
            }
        }
        match self.phase {
            RolloutPhase::Idle => {}
            RolloutPhase::Draft => {
                let Some(from) = self.observe_from else {
                    self.open_window(now, fleet);
                    return;
                };
                if now.0.saturating_sub(from.0) < self.cfg.observation_window {
                    return;
                }
                // Baseline measured: per-agent goodput over one window.
                self.baseline.clear();
                for a in fleet.agents {
                    let start = self.window_start.get(&a.enb).copied().unwrap_or(a.goodput);
                    self.baseline.insert(a.enb, a.goodput.saturating_sub(start));
                }
                let (canary, version) = (self.canary, self.active);
                self.set_phase(RolloutPhase::Canary);
                self.record(now, RolloutEventKind::CanaryPushed, version, canary);
                self.push_paced(now, canary, version, actions);
            }
            RolloutPhase::Canary => {
                let sig = self.signature_of(self.active);
                let applied = fleet
                    .agents
                    .iter()
                    .any(|a| a.enb == self.canary && a.applied == sig);
                if !applied {
                    // Lost push / lost ack: paced retry until the canary
                    // advertises the signature.
                    let (canary, version) = (self.canary, self.active);
                    self.push_paced(now, canary, version, actions);
                    return;
                }
                let Some(from) = self.observe_from else {
                    self.open_window(now, fleet);
                    self.record(
                        now,
                        RolloutEventKind::CanaryApplied,
                        self.active,
                        self.canary,
                    );
                    return;
                };
                if let Some(enb) = self.window_regression(fleet) {
                    self.start_rollback(now, enb);
                    return;
                }
                if now.0.saturating_sub(from.0) < self.cfg.observation_window {
                    return;
                }
                if let Some(enb) = self.goodput_regression(fleet) {
                    self.start_rollback(now, enb);
                    return;
                }
                // Canary window passed: fleet push.
                let version = self.active;
                self.set_phase(RolloutPhase::Fleet);
                self.record(now, RolloutEventKind::FleetPushed, version, EnbId(0));
                let targets: Vec<EnbId> = fleet
                    .agents
                    .iter()
                    .filter(|a| a.applied != self.signature_of(version))
                    .map(|a| a.enb)
                    // lint:allow(alloc-reach) once per rollout phase transition
                    .collect();
                for enb in targets {
                    self.push_paced(now, enb, version, actions);
                }
            }
            RolloutPhase::Fleet => {
                let sig = self.signature_of(self.active);
                let mut all_applied = true;
                // lint:allow(alloc-reach) straggler list — bounded by fleet size, rollout-only
                let mut stragglers: Vec<EnbId> = Vec::new();
                for a in fleet.agents {
                    if a.applied != sig {
                        all_applied = false;
                        stragglers.push(a.enb);
                    }
                }
                if !all_applied {
                    let version = self.active;
                    for enb in stragglers {
                        self.push_paced(now, enb, version, actions);
                    }
                    return;
                }
                let Some(from) = self.observe_from else {
                    self.open_window(now, fleet);
                    self.record(now, RolloutEventKind::FleetApplied, self.active, EnbId(0));
                    return;
                };
                if let Some(enb) = self.window_regression(fleet) {
                    self.start_rollback(now, enb);
                    return;
                }
                if now.0.saturating_sub(from.0) < self.cfg.observation_window {
                    return;
                }
                if let Some(enb) = self.goodput_regression(fleet) {
                    self.start_rollback(now, enb);
                    return;
                }
                let version = self.active;
                self.last_converged = version;
                self.set_phase(RolloutPhase::Converged);
                self.record(now, RolloutEventKind::Converged, version, EnbId(0));
            }
            RolloutPhase::RollingBack => {
                if self.last_converged == 0 {
                    // Nothing ever converged: there is no known-good
                    // bundle to restore, so the rollback degenerates to
                    // ending the rollout (agents that applied the bad
                    // version keep it until a future rollout replaces
                    // it — documented limitation of the first rollout).
                    let version = self.active;
                    self.set_phase(RolloutPhase::RolledBack);
                    self.record(now, RolloutEventKind::RolledBack, version, EnbId(0));
                    return;
                }
                let target = self.last_converged;
                let sig = self.signature_of(target);
                let mut all_back = true;
                let mut pushed_any = false;
                // lint:allow(alloc-reach) straggler list — bounded by fleet size, rollback-only
                let mut stragglers: Vec<EnbId> = Vec::new();
                for a in fleet.agents {
                    if a.applied != sig {
                        all_back = false;
                        stragglers.push(a.enb);
                    }
                }
                for enb in stragglers {
                    pushed_any |= self.push_paced(now, enb, target, actions);
                }
                if pushed_any && self.observe_from.is_none() {
                    // (Ab)use observe_from as the "rollback pushes went
                    // out" latch so the event records exactly once.
                    self.observe_from = Some(now);
                    self.record(now, RolloutEventKind::RollbackPushed, target, EnbId(0));
                }
                if all_back {
                    let version = self.active;
                    self.set_phase(RolloutPhase::RolledBack);
                    self.record(now, RolloutEventKind::RolledBack, version, EnbId(0));
                }
            }
            RolloutPhase::Converged | RolloutPhase::RolledBack => {
                // Steady state: re-converge drifted stragglers (an agent
                // crash-restart wipes its applied config; its heartbeat
                // then advertises 0 and draws a paced re-push).
                if self.last_converged == 0 {
                    return;
                }
                let target = self.last_converged;
                let sig = self.signature_of(target);
                let drifted: Vec<EnbId> = fleet
                    .agents
                    .iter()
                    .filter(|a| !a.down && a.applied != sig)
                    .map(|a| a.enb)
                    // lint:allow(alloc-reach) drift list — non-empty only while a straggler exists
                    .collect();
                for enb in drifted {
                    if self.push_paced(now, enb, target, actions) {
                        self.drift_repushes += 1;
                    }
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Journal codec (raw bytes carried in a TAG_ROLLOUT record)
    // ------------------------------------------------------------------

    /// Serialize the durable state (bundle store, history, state-machine
    /// position, baseline). Volatile observation sub-state is excluded:
    /// recovery re-opens the current window.
    pub fn to_bytes(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64 + self.bundles.len() * 64 + self.history.len() * 21);
        out.push(CODEC_VERSION);
        out.push(self.phase.code());
        out.extend_from_slice(&self.active.to_be_bytes());
        out.extend_from_slice(&self.last_converged.to_be_bytes());
        out.extend_from_slice(&self.canary.0.to_be_bytes());
        for v in [
            self.cfg.observation_window,
            self.cfg.max_goodput_drop_pct,
            self.cfg.max_failovers,
            self.cfg.max_rejected_updates,
            self.cfg.max_over_budget_ttis,
        ] {
            out.extend_from_slice(&v.to_be_bytes());
        }
        out.extend_from_slice(&(self.bundles.len() as u32).to_be_bytes());
        for b in self.bundles.values() {
            out.extend_from_slice(&b.version.to_be_bytes());
            write_str(&mut out, &b.policy_yaml);
            write_str(&mut out, &b.vsf_key);
            write_str(&mut out, &b.scheduler);
            out.extend_from_slice(&b.signature.to_be_bytes());
        }
        out.extend_from_slice(&(self.history.len() as u32).to_be_bytes());
        for e in &self.history {
            out.extend_from_slice(&e.tti.0.to_be_bytes());
            out.push(e.kind.code());
            out.extend_from_slice(&e.version.to_be_bytes());
            out.extend_from_slice(&e.enb.0.to_be_bytes());
        }
        out.extend_from_slice(&(self.baseline.len() as u32).to_be_bytes());
        for (enb, goodput) in &self.baseline {
            out.extend_from_slice(&enb.0.to_be_bytes());
            out.extend_from_slice(&goodput.to_be_bytes());
        }
        out
    }

    /// Rebuild from journal bytes. Structured errors on corruption,
    /// never a panic.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut buf = bytes;
        let version = take_u8(&mut buf)?;
        if version != CODEC_VERSION {
            return Err(FlexError::Codec(format!(
                "rollout state codec version {version} unsupported"
            )));
        }
        let mut c = RolloutController::new();
        c.phase = RolloutPhase::from_code(take_u8(&mut buf)?)?;
        c.active = take_u64(&mut buf)?;
        c.last_converged = take_u64(&mut buf)?;
        c.canary = EnbId(take_u32(&mut buf)?);
        c.cfg.observation_window = take_u64(&mut buf)?;
        c.cfg.max_goodput_drop_pct = take_u64(&mut buf)?;
        c.cfg.max_failovers = take_u64(&mut buf)?;
        c.cfg.max_rejected_updates = take_u64(&mut buf)?;
        c.cfg.max_over_budget_ttis = take_u64(&mut buf)?;
        let n_bundles = take_u32(&mut buf)? as usize;
        for _ in 0..n_bundles {
            let version = take_u64(&mut buf)?;
            let policy_yaml = take_str(&mut buf)?;
            let vsf_key = take_str(&mut buf)?;
            let scheduler = take_str(&mut buf)?;
            let signature = take_u64(&mut buf)?;
            c.bundles.insert(
                version,
                ConfigBundle {
                    version,
                    policy_yaml,
                    vsf_key,
                    scheduler,
                    signature,
                },
            );
        }
        let n_history = (take_u32(&mut buf)? as usize).min(HISTORY_CAP);
        for _ in 0..n_history {
            let tti = Tti(take_u64(&mut buf)?);
            let kind = RolloutEventKind::from_code(take_u8(&mut buf)?)?;
            let version = take_u64(&mut buf)?;
            let enb = EnbId(take_u32(&mut buf)?);
            c.history.push(RolloutEvent {
                tti,
                kind,
                version,
                enb,
            });
        }
        let n_baseline = take_u32(&mut buf)? as usize;
        for _ in 0..n_baseline {
            let enb = EnbId(take_u32(&mut buf)?);
            let goodput = take_u64(&mut buf)?;
            c.baseline.insert(enb, goodput);
        }
        if !buf.is_empty() {
            return Err(FlexError::Codec("rollout state has trailing bytes".into()));
        }
        Ok(c)
    }
}

fn write_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_be_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(FlexError::Codec("rollout state truncated".into()));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    Ok(take(buf, 1)?.first().copied().unwrap_or(0))
}

fn take_u32(buf: &mut &[u8]) -> Result<u32> {
    let b = take(buf, 4)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(b);
    Ok(u32::from_be_bytes(a))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    let b = take(buf, 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    Ok(u64::from_be_bytes(a))
}

fn take_str(buf: &mut &[u8]) -> Result<String> {
    let len = take_u32(buf)? as usize;
    if len > flexran_proto::frame::MAX_FRAME_BYTES {
        return Err(FlexError::Codec(format!(
            "rollout string of {len} bytes exceeds the frame cap"
        )));
    }
    let raw = take(buf, len)?;
    String::from_utf8(raw.to_vec())
        .map_err(|_| FlexError::Codec("rollout string is not UTF-8".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn kpi(enb: u32, goodput: u64, down: bool, applied: u64) -> AgentKpi {
        AgentKpi {
            enb: EnbId(enb),
            goodput,
            down,
            applied,
        }
    }

    fn fleet<'a>(agents: &'a [AgentKpi]) -> FleetKpi<'a> {
        FleetKpi {
            agents,
            rejected_updates: 0,
            over_budget_ttis: 0,
        }
    }

    fn quick_cfg() -> RolloutConfig {
        RolloutConfig {
            observation_window: 10,
            ..RolloutConfig::default()
        }
    }

    /// Drive a full clean rollout: Draft baseline → canary → fleet →
    /// converged, with agents whose goodput grows steadily.
    fn converge_v1(c: &mut RolloutController) -> u64 {
        let v = c
            .apply(
                Tti(0),
                String::new(),
                String::new(),
                "max-cqi".into(),
                EnbId(1),
                quick_cfg(),
            )
            .unwrap();
        let sig = c.bundle(v).unwrap().signature;
        let mut actions = Vec::new();
        let mut applied = [0u64, 0];
        for t in 0..200u64 {
            actions.clear();
            let agents = [
                kpi(1, t * 10, false, applied[0]),
                kpi(2, t * 10, false, applied[1]),
            ];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
            for a in &actions {
                let RolloutAction::Push { enb, bundle } = a;
                assert_eq!(bundle.signature, sig);
                applied[(enb.0 - 1) as usize] = bundle.signature;
            }
            if c.phase() == RolloutPhase::Converged {
                return v;
            }
        }
        panic!("rollout did not converge; phase {}", c.phase());
    }

    #[test]
    fn clean_rollout_converges_canary_first() {
        let mut c = RolloutController::new();
        let v = converge_v1(&mut c);
        assert_eq!(v, 1);
        assert_eq!(c.last_converged(), 1);
        let kinds: Vec<RolloutEventKind> = c.history().iter().map(|e| e.kind).collect();
        assert_eq!(
            kinds,
            vec![
                RolloutEventKind::Applied,
                RolloutEventKind::CanaryPushed,
                RolloutEventKind::CanaryApplied,
                RolloutEventKind::FleetPushed,
                RolloutEventKind::FleetApplied,
                RolloutEventKind::Converged,
            ]
        );
        // The canary got the bundle before agent 2 did.
        assert_eq!(c.history()[1].enb, EnbId(1));
    }

    #[test]
    fn goodput_regression_rolls_back_to_last_converged() {
        let mut c = RolloutController::new();
        converge_v1(&mut c);
        let sig1 = c.bundle(1).unwrap().signature;
        let v2 = c
            .apply(
                Tti(300),
                String::new(),
                String::new(),
                "remote-stub".into(),
                EnbId(1),
                quick_cfg(),
            )
            .unwrap();
        let sig2 = c.bundle(v2).unwrap().signature;
        let mut actions = Vec::new();
        let mut applied = [sig1, sig1];
        let mut saw_rollback_push = false;
        for t in 300..600u64 {
            actions.clear();
            // Agent 1's goodput flatlines once it applies v2 (the bad
            // bundle); agent 2 keeps growing.
            let g1 = if applied[0] == sig2 { 3000 } else { t * 10 };
            let agents = [
                kpi(1, g1, false, applied[0]),
                kpi(2, t * 10, false, applied[1]),
            ];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
            for a in &actions {
                let RolloutAction::Push { enb, bundle } = a;
                if bundle.signature == sig1 {
                    saw_rollback_push = true;
                }
                applied[(enb.0 - 1) as usize] = bundle.signature;
            }
            if c.phase() == RolloutPhase::RolledBack {
                break;
            }
        }
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        assert!(saw_rollback_push);
        assert_eq!(c.last_converged(), 1, "rollback lands on last converged");
        assert_eq!(applied, [sig1, sig1], "both agents back on v1");
        let kinds: Vec<RolloutEventKind> = c.history().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&RolloutEventKind::Regression));
        assert!(kinds.contains(&RolloutEventKind::RollbackPushed));
        assert!(kinds.contains(&RolloutEventKind::RolledBack));
        // v2 never spread beyond the canary: agent 2 never saw sig2.
    }

    #[test]
    fn canary_refusal_is_an_immediate_regression() {
        let mut c = RolloutController::new();
        converge_v1(&mut c);
        let sig1 = c.bundle(1).unwrap().signature;
        let v2 = c
            .apply(
                Tti(300),
                "bad: policy".into(),
                String::new(),
                String::new(),
                EnbId(1),
                quick_cfg(),
            )
            .unwrap();
        let sig2 = c.bundle(v2).unwrap().signature;
        let mut actions = Vec::new();
        // Draft baseline window first.
        for t in 300..315u64 {
            actions.clear();
            let agents = [kpi(1, t * 10, false, sig1), kpi(2, t * 10, false, sig1)];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
        }
        assert_eq!(c.phase(), RolloutPhase::Canary);
        // The canary nacks the push.
        let agents = [kpi(1, 3150, false, sig1), kpi(2, 3150, false, sig1)];
        actions.clear();
        c.step(
            Tti(315),
            &fleet(&agents),
            &[BundleAck {
                enb: EnbId(1),
                version: v2,
                signature: sig2,
                ok: false,
            }],
            &mut actions,
        );
        assert_eq!(c.phase(), RolloutPhase::RollingBack);
        let kinds: Vec<RolloutEventKind> = c.history().iter().map(|e| e.kind).collect();
        assert!(kinds.contains(&RolloutEventKind::Rejected));
    }

    #[test]
    fn lost_canary_push_is_retried_paced() {
        let mut c = RolloutController::new();
        c.apply(
            Tti(0),
            String::new(),
            String::new(),
            "max-cqi".into(),
            EnbId(1),
            quick_cfg(),
        )
        .unwrap();
        let mut actions = Vec::new();
        let mut pushes = 0;
        for t in 0..100u64 {
            actions.clear();
            // The canary never applies (its pushes are "lost").
            let agents = [kpi(1, t * 10, false, 0)];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
            pushes += actions.len();
        }
        // ~11 TTIs of Draft, then one push per ROLLOUT_PUSH_RETRY_PERIOD.
        assert!(
            (3..=6).contains(&pushes),
            "paced retries, not per-cycle spam: {pushes}"
        );
    }

    #[test]
    fn drift_draws_a_repush_after_convergence() {
        let mut c = RolloutController::new();
        converge_v1(&mut c);
        let sig1 = c.bundle(1).unwrap().signature;
        let mut actions = Vec::new();
        // Agent 2 crash-restarts: advertises 0 again.
        c.step(
            Tti(400),
            &fleet(&[kpi(1, 99_999, false, sig1), kpi(2, 99_999, false, 0)]),
            &[],
            &mut actions,
        );
        assert_eq!(actions.len(), 1);
        let RolloutAction::Push { enb, bundle } = &actions[0];
        assert_eq!(*enb, EnbId(2));
        assert_eq!(bundle.signature, sig1);
        assert_eq!(c.drift_repushes(), 1);
        // Still down agents are left alone (nothing to push to).
        actions.clear();
        c.step(
            Tti(500),
            &fleet(&[kpi(1, 99_999, false, sig1), kpi(2, 99_999, true, 0)]),
            &[],
            &mut actions,
        );
        assert!(actions.is_empty());
    }

    #[test]
    fn apply_while_in_flight_is_refused() {
        let mut c = RolloutController::new();
        c.apply(
            Tti(0),
            String::new(),
            String::new(),
            String::new(),
            EnbId(1),
            quick_cfg(),
        )
        .unwrap();
        let err = c
            .apply(
                Tti(1),
                String::new(),
                String::new(),
                String::new(),
                EnbId(1),
                quick_cfg(),
            )
            .unwrap_err();
        assert_eq!(err.category(), "conflict");
    }

    #[test]
    fn abort_rolls_back_only_what_was_pushed() {
        let mut c = RolloutController::new();
        // Abort in Draft: nothing was pushed, rollout just ends.
        c.apply(
            Tti(0),
            String::new(),
            String::new(),
            String::new(),
            EnbId(1),
            quick_cfg(),
        )
        .unwrap();
        c.abort(Tti(1)).unwrap();
        assert_eq!(c.phase(), RolloutPhase::RolledBack);
        assert!(c.abort(Tti(2)).is_err(), "nothing in flight");
    }

    #[test]
    fn state_roundtrips_through_journal_codec() {
        let mut c = RolloutController::new();
        converge_v1(&mut c);
        c.apply(
            Tti(300),
            "mac:\n".into(),
            "max-cqi".into(),
            "remote-stub".into(),
            EnbId(2),
            quick_cfg(),
        )
        .unwrap();
        let bytes = c.to_bytes();
        let restored = RolloutController::from_bytes(&bytes).unwrap();
        assert_eq!(restored.phase(), c.phase());
        assert_eq!(restored.active_version(), c.active_version());
        assert_eq!(restored.last_converged(), c.last_converged());
        assert_eq!(restored.status(), c.status());
        assert_eq!(restored.history(), c.history());
        assert_eq!(restored.issued_signatures(), c.issued_signatures());
        assert_eq!(restored.bundle(1), c.bundle(1));
        assert_eq!(restored.bundle(2), c.bundle(2));
        // Corruption errors structurally, never a panic.
        for cut in 0..bytes.len() {
            let _ = RolloutController::from_bytes(&bytes[..cut]);
        }
        for i in 0..bytes.len() {
            let mut mutated = bytes.clone();
            mutated[i] ^= 0x55;
            let _ = RolloutController::from_bytes(&mutated);
        }
        let mut padded = bytes.clone();
        padded.push(0);
        assert!(RolloutController::from_bytes(&padded).is_err());
    }

    #[test]
    fn recovery_mid_canary_resumes_the_rollout() {
        let mut c = RolloutController::new();
        converge_v1(&mut c);
        let sig1 = c.bundle(1).unwrap().signature;
        let v2 = c
            .apply(
                Tti(300),
                String::new(),
                String::new(),
                "max-cqi".into(),
                EnbId(1),
                quick_cfg(),
            )
            .unwrap();
        let sig2 = c.bundle(v2).unwrap().signature;
        let mut actions = Vec::new();
        let mut applied = [sig1, sig1];
        // Run until the canary has applied v2 (mid-observation).
        for t in 300..330u64 {
            actions.clear();
            let agents = [
                kpi(1, t * 10, false, applied[0]),
                kpi(2, t * 10, false, applied[1]),
            ];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
            for a in &actions {
                let RolloutAction::Push { enb, bundle } = a;
                applied[(enb.0 - 1) as usize] = bundle.signature;
            }
            if c.phase() == RolloutPhase::Canary && applied[0] == sig2 {
                break;
            }
        }
        assert_eq!(c.phase(), RolloutPhase::Canary);
        // Crash + recover: the machine resumes in Canary, re-opens the
        // window, and still converges.
        let mut c = RolloutController::from_bytes(&c.to_bytes()).unwrap();
        assert_eq!(c.phase(), RolloutPhase::Canary);
        for t in 400..700u64 {
            actions.clear();
            let agents = [
                kpi(1, t * 10, false, applied[0]),
                kpi(2, t * 10, false, applied[1]),
            ];
            c.step(Tti(t), &fleet(&agents), &[], &mut actions);
            for a in &actions {
                let RolloutAction::Push { enb, bundle } = a;
                applied[(enb.0 - 1) as usize] = bundle.signature;
            }
            if c.phase() == RolloutPhase::Converged {
                break;
            }
        }
        assert_eq!(c.phase(), RolloutPhase::Converged);
        assert_eq!(c.last_converged(), v2);
    }

    #[test]
    fn history_is_bounded() {
        let mut c = RolloutController::new();
        for i in 0..(HISTORY_CAP + 10) {
            c.record(Tti(i as u64), RolloutEventKind::Applied, 1, EnbId(0));
        }
        assert_eq!(c.history().len(), HISTORY_CAP);
        assert_eq!(c.history()[0].tti, Tti(10), "oldest entries dropped");
    }
}
