//! The RAN Information Base (paper §4.3.3).
//!
//! "A key component that maintains all the statistics and configuration
//! related information about the underlying network entities [...]
//! structured as a forest graph": each tree is rooted at an agent, with
//! the agent's cells at the second level and the UEs attached to each
//! (primary) cell as leaves. Following the paper, the RIB stores *raw*
//! reported data (no high-level abstraction — that is §7.3 future work):
//! the leaves hold the last [`UeReport`] verbatim.
//!
//! Only the RIB Updater writes (see [`crate::updater`]); applications and
//! the event service read.

use std::collections::BTreeMap;

use flexran_proto::messages::config::CellConfigPb;
use flexran_proto::messages::{CellReport, UeReport};
use flexran_types::ids::{CellId, EnbId, Rnti, UeId};
use flexran_types::time::Tti;

/// Leaf: one UE's last-known state.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct UeNode {
    pub rnti: Rnti,
    pub ue_tag: UeId,
    /// The raw last report (the paper's "raw data to the northbound API").
    pub report: UeReport,
    /// Master-clock time of the last update.
    pub updated: Tti,
}

/// Second level: one cell. UE leaves live in a dense slab sorted by
/// RNTI: hot readers (`RibView` polls, `run_rib_slot` walks) scan a
/// contiguous slice instead of chasing B-tree nodes; attach/detach pays
/// the (cold) sorted insert/remove.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CellNode {
    pub cell_id: CellId,
    pub config: Option<CellConfigPb>,
    pub last_report: Option<CellReport>,
    pub updated: Tti,
    ues: Vec<UeNode>,
}

impl CellNode {
    /// All UE leaves, ascending by RNTI (the hot read path).
    pub fn ues(&self) -> &[UeNode] {
        &self.ues
    }

    pub fn ue(&self, rnti: Rnti) -> Option<&UeNode> {
        self.ues
            .binary_search_by_key(&rnti, |u| u.rnti)
            .ok()
            // lint:allow(panic) index returned by binary_search on this vec
            .map(|i| &self.ues[i])
    }

    pub fn ue_mut(&mut self, rnti: Rnti) -> Option<&mut UeNode> {
        self.ues
            .binary_search_by_key(&rnti, |u| u.rnti)
            .ok()
            // lint:allow(panic) index returned by binary_search on this vec
            .map(|i| &mut self.ues[i])
    }

    /// Writer-side find-or-create (attach path; the slab insert keeps
    /// ascending-RNTI order so reads stay bit-identical to the B-tree
    /// layout this replaced).
    pub fn ue_entry(&mut self, rnti: Rnti) -> &mut UeNode {
        let i = match self.ues.binary_search_by_key(&rnti, |u| u.rnti) {
            Ok(i) => i,
            Err(i) => {
                self.ues.insert(
                    i,
                    UeNode {
                        rnti,
                        ..UeNode::default()
                    },
                );
                i
            }
        };
        // lint:allow(panic) `i` is a hit or the freshly inserted position
        &mut self.ues[i]
    }

    /// Writer-side insert of a fully built leaf (fixtures, shard merge).
    pub fn insert_ue(&mut self, node: UeNode) {
        match self.ues.binary_search_by_key(&node.rnti, |u| u.rnti) {
            // lint:allow(panic) index returned by binary_search on this vec
            Ok(i) => self.ues[i] = node,
            Err(i) => self.ues.insert(i, node),
        }
    }

    pub fn remove_ue(&mut self, rnti: Rnti) -> Option<UeNode> {
        self.ues
            .binary_search_by_key(&rnti, |u| u.rnti)
            .ok()
            .map(|i| self.ues.remove(i))
    }

    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }
}

/// Root: one agent / eNodeB.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AgentNode {
    pub enb_id: EnbId,
    pub capabilities: Vec<String>,
    /// Cell count the agent declared in its `Hello`. The RIB Updater
    /// rejects reports and events for cell ids outside `0..n_cells` —
    /// they can only come from a corrupted or misbehaving agent, and
    /// folding them in would grow phantom subtrees nothing ever prunes.
    pub n_cells: u32,
    pub connected_at: Tti,
    /// Last subframe sync: `(agent TTI, master time when received)`. The
    /// agent view is stale by the one-way control-channel delay — exactly
    /// the offset the schedule-ahead parameter must absorb (paper §5.3).
    pub last_sync: Option<(Tti, Tti)>,
    /// Master time the agent's session was declared dead, if it currently
    /// is. While set, the whole subtree is a pre-outage snapshot: it is
    /// kept (the topology has not changed, and the rejoining agent will
    /// refresh it) but readers must not treat it as live state.
    pub stale_since: Option<Tti>,
    /// Dense cell slab sorted by cell id (same flattening as
    /// [`CellNode::ues`]).
    cells: Vec<CellNode>,
}

impl AgentNode {
    /// All cells, ascending by id (the hot read path).
    pub fn cells(&self) -> &[CellNode] {
        &self.cells
    }

    pub fn cell(&self, cell: CellId) -> Option<&CellNode> {
        self.cells
            .binary_search_by_key(&cell, |c| c.cell_id)
            .ok()
            // lint:allow(panic) index returned by binary_search on this vec
            .map(|i| &self.cells[i])
    }

    pub fn cell_mut(&mut self, cell: CellId) -> Option<&mut CellNode> {
        self.cells
            .binary_search_by_key(&cell, |c| c.cell_id)
            .ok()
            // lint:allow(panic) index returned by binary_search on this vec
            .map(|i| &mut self.cells[i])
    }

    /// Writer-side find-or-create (config/report/attach paths).
    pub fn cell_entry(&mut self, cell: CellId) -> &mut CellNode {
        let i = match self.cells.binary_search_by_key(&cell, |c| c.cell_id) {
            Ok(i) => i,
            Err(i) => {
                self.cells.insert(
                    i,
                    CellNode {
                        cell_id: cell,
                        ..CellNode::default()
                    },
                );
                i
            }
        };
        // lint:allow(panic) `i` is a hit or the freshly inserted position
        &mut self.cells[i]
    }

    pub fn remove_cell(&mut self, cell: CellId) -> Option<CellNode> {
        self.cells
            .binary_search_by_key(&cell, |c| c.cell_id)
            .ok()
            .map(|i| self.cells.remove(i))
    }

    /// The newest subframe the master knows the agent has reached.
    pub fn synced_subframe(&self) -> Option<Tti> {
        self.last_sync.map(|(agent_tti, _)| agent_tti)
    }

    /// Start a staleness epoch (agent session declared dead). Keeps the
    /// first epoch start if called repeatedly during one outage.
    pub fn mark_stale(&mut self, now: Tti) {
        self.stale_since.get_or_insert(now);
    }

    /// End the staleness epoch (agent session restored).
    pub fn mark_fresh(&mut self) {
        self.stale_since = None;
    }

    pub fn is_stale(&self) -> bool {
        self.stale_since.is_some()
    }
}

/// `debug-invariants` bookkeeping: the master opens the write window at
/// the start of each RIB slot and closes it before the apps slot; any
/// mutation while closed, or a non-monotonic cycle epoch, asserts.
#[cfg(feature = "debug-invariants")]
#[derive(Debug, Clone, Default)]
struct WriteGuard {
    /// Writes are currently forbidden (apps slot / between cycles, once
    /// a cycle has ever been opened).
    locked: bool,
    /// Epoch of the last opened write cycle — must advance strictly.
    last_cycle: Option<Tti>,
}

/// The RAN Information Base.
///
/// Agent subtrees live in index-addressed slots (`slots`): a slot id is
/// assigned on attach, stays stable for the agent's lifetime, and is
/// recycled after a permanent departure. The `EnbId` → slot map is the
/// *cold* path — attach, detach and point queries; every per-cycle walk
/// (`agents`, `all_ues`, the shard RIB slot) iterates `order`, which
/// holds the live slots ascending by agent id so iteration order — and
/// therefore every digest and journal snapshot — is bit-identical to
/// the B-tree forest this replaced.
#[derive(Clone, Default)]
pub struct Rib {
    slots: Vec<Option<AgentNode>>,
    /// Cold id → slot lookup (attach/detach/point queries).
    index: BTreeMap<EnbId, usize>,
    /// Live slots, ascending by `EnbId` (the hot iteration order).
    order: Vec<usize>,
    /// Recyclable slot ids.
    free: Vec<usize>,
    #[cfg(feature = "debug-invariants")]
    write_guard: WriteGuard,
}

/// Slot numbering and free-list state are attach-order artefacts, not
/// forest data: `Debug` renders the id-ordered forest only, so a dump
/// (and anything hashing it) is identical across shard layouts and
/// recovery paths that build the same forest.
impl std::fmt::Debug for Rib {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_map()
            .entries(self.agents().map(|a| (a.enb_id, a)))
            .finish()
    }
}

/// Forest equality — write-guard bookkeeping is deliberately excluded so
/// a recovered RIB (which never opened a cycle yet) can compare equal to
/// the pre-crash original (journal round-trip golden tests).
impl PartialEq for Rib {
    fn eq(&self, other: &Self) -> bool {
        // Slot numbering is an artefact of attach order; forests are
        // equal when the id-ordered agent sequences are.
        self.n_agents() == other.n_agents() && self.agents().eq(other.agents())
    }
}

impl Rib {
    pub fn new() -> Self {
        Self::default()
    }

    /// Open the write window for cycle `now`. Under `debug-invariants`
    /// this asserts the cycle epoch advances strictly monotonically and
    /// re-enables mutation; without the feature it is a no-op. A freshly
    /// constructed RIB is writable (standalone fixtures never open
    /// cycles), so the discipline only engages once a Task Manager does.
    pub fn open_write_cycle(&mut self, now: Tti) {
        #[cfg(feature = "debug-invariants")]
        {
            if let Some(last) = self.write_guard.last_cycle {
                assert!(
                    now > last,
                    "RIB write-cycle epoch must be strictly monotonic: \
                     opened {now:?} after {last:?}"
                );
            }
            self.write_guard.last_cycle = Some(now);
            self.write_guard.locked = false;
        }
        #[cfg(not(feature = "debug-invariants"))]
        let _ = now;
    }

    /// Close the write window (the apps slot begins). Under
    /// `debug-invariants`, RIB mutation until the next
    /// [`Rib::open_write_cycle`] asserts; a no-op otherwise.
    pub fn close_write_cycle(&mut self) {
        #[cfg(feature = "debug-invariants")]
        {
            self.write_guard.locked = true;
        }
    }

    #[cfg(feature = "debug-invariants")]
    fn assert_writable(&self) {
        assert!(
            !self.write_guard.locked,
            "RIB mutated outside the RIB slot: the single-writer \
             discipline (paper Fig. 5) allows writes only between \
             open_write_cycle and close_write_cycle"
        );
    }

    pub fn agent(&self, enb: EnbId) -> Option<&AgentNode> {
        let &slot = self.index.get(&enb)?;
        // lint:allow(panic) `index` only holds live slot positions
        self.slots[slot].as_ref()
    }

    /// Writer-side access: creates the agent node if missing. Only the
    /// RIB Updater (and test/bench harnesses constructing RIB fixtures)
    /// should call this — applications read.
    pub fn agent_mut(&mut self, enb: EnbId) -> &mut AgentNode {
        #[cfg(feature = "debug-invariants")]
        self.assert_writable();
        let slot = match self.index.get(&enb) {
            Some(&s) => s,
            None => self.attach_slot(
                enb,
                AgentNode {
                    enb_id: enb,
                    ..AgentNode::default()
                },
            ),
        };
        // lint:allow(panic) `index` and `slots` move in lockstep; a hit is live
        self.slots[slot].as_mut().expect("indexed slot is live")
    }

    /// Cold path: claim a slot for a new agent and splice it into the
    /// id-ordered iteration sequence.
    fn attach_slot(&mut self, enb: EnbId, node: AgentNode) -> usize {
        let slot = match self.free.pop() {
            Some(s) => {
                // lint:allow(panic) `free` only holds retired in-bounds slots
                self.slots[s] = Some(node);
                s
            }
            None => {
                self.slots.push(Some(node));
                self.slots.len() - 1
            }
        };
        self.index.insert(enb, slot);
        let pos = self
            .order
            .binary_search_by_key(&enb, |&s| {
                // lint:allow(panic) `order` only lists live slots
                self.slots[s].as_ref().expect("ordered slot is live").enb_id
            })
            .unwrap_or_else(|p| p);
        self.order.insert(pos, slot);
        slot
    }

    /// Adopt a fully built agent subtree (shard-merge path: assembling a
    /// shard-transparent RIB snapshot from per-shard forests). Writer-side
    /// like [`Rib::agent_mut`] — only the shard merge and fixtures call it.
    pub fn adopt_agent(&mut self, node: AgentNode) {
        #[cfg(feature = "debug-invariants")]
        self.assert_writable();
        match self.index.get(&node.enb_id) {
            // lint:allow(panic) `index` only holds live slot positions
            Some(&slot) => self.slots[slot] = Some(node),
            None => {
                self.attach_slot(node.enb_id, node);
            }
        }
    }

    /// Remove an agent (permanent departure). Transient session loss
    /// should use [`AgentNode::mark_stale`] instead, which preserves the
    /// subtree for the agent's return.
    pub fn remove_agent(&mut self, enb: EnbId) {
        #[cfg(feature = "debug-invariants")]
        self.assert_writable();
        let Some(slot) = self.index.remove(&enb) else {
            return;
        };
        // lint:allow(panic) `index` only holds live slot positions
        self.slots[slot] = None;
        self.free.push(slot);
        if let Some(pos) = self.order.iter().position(|&s| s == slot) {
            self.order.remove(pos);
        }
    }

    /// Agents whose sessions are currently down, with their epoch starts.
    pub fn stale_agents(&self) -> Vec<(EnbId, Tti)> {
        self.agents()
            .filter_map(|a| a.stale_since.map(|t| (a.enb_id, t)))
            .collect()
    }

    pub fn agents(&self) -> impl Iterator<Item = &AgentNode> {
        self.order
            .iter()
            // lint:allow(panic) `order` only lists live slots
            .map(|&s| self.slots[s].as_ref().expect("ordered slot is live"))
    }

    pub fn n_agents(&self) -> usize {
        self.order.len()
    }

    pub fn cell(&self, enb: EnbId, cell: CellId) -> Option<&CellNode> {
        self.agent(enb)?.cell(cell)
    }

    pub fn ue(&self, enb: EnbId, cell: CellId, rnti: Rnti) -> Option<&UeNode> {
        self.cell(enb, cell)?.ue(rnti)
    }

    /// All UEs across the forest, with their coordinates.
    pub fn all_ues(&self) -> Vec<(EnbId, CellId, &UeNode)> {
        let mut out = Vec::new();
        for a in self.agents() {
            for c in a.cells() {
                for u in c.ues() {
                    out.push((a.enb_id, c.cell_id, u));
                }
            }
        }
        out
    }

    /// Total UE count.
    pub fn n_ues(&self) -> usize {
        self.agents()
            .flat_map(|a| a.cells())
            .map(|c| c.n_ues())
            .sum()
    }

    /// Approximate heap footprint of the RIB — the memory series of
    /// paper Fig. 8.
    pub fn heap_bytes(&self) -> usize {
        let mut total = std::mem::size_of::<Self>();
        total += self.slots.capacity() * std::mem::size_of::<Option<AgentNode>>();
        total += (self.order.capacity() + self.free.capacity()) * std::mem::size_of::<usize>();
        for a in self.agents() {
            total += a
                .capabilities
                .iter()
                .map(|s| s.capacity() + 24)
                .sum::<usize>();
            for c in a.cells() {
                total += std::mem::size_of::<CellNode>();
                for u in c.ues() {
                    total += std::mem::size_of::<UeNode>();
                    // Vec payloads inside the raw report.
                    total += u.report.subband_cqi.capacity() * 8;
                    total += u.report.subband_cqi_cw1.capacity() * 8;
                    total += u.report.bsr.capacity() * 8;
                    total += u.report.harq_states.capacity() * 8;
                    total += u.report.harq_rounds.capacity() * 8;
                    total += u.report.tbs_per_process.capacity() * 8;
                    total += u.report.ul_subband_sinr.capacity() * 8;
                    total += u.report.rlc.capacity()
                        * std::mem::size_of::<flexran_proto::messages::stats::RlcReport>();
                }
            }
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forest_structure_navigable() {
        let mut rib = Rib::new();
        {
            let agent = rib.agent_mut(EnbId(1));
            agent.connected_at = Tti(0);
            let cell = agent.cell_entry(CellId(0));
            cell.insert_ue(UeNode {
                rnti: Rnti(0x100),
                ue_tag: UeId(7),
                ..UeNode::default()
            });
        }
        assert_eq!(rib.n_agents(), 1);
        assert_eq!(rib.n_ues(), 1);
        assert!(rib.ue(EnbId(1), CellId(0), Rnti(0x100)).is_some());
        assert!(rib.ue(EnbId(1), CellId(0), Rnti(0x101)).is_none());
        assert_eq!(rib.all_ues().len(), 1);
        rib.remove_agent(EnbId(1));
        assert_eq!(rib.n_agents(), 0);
    }

    #[test]
    fn heap_grows_with_content() {
        let mut rib = Rib::new();
        let empty = rib.heap_bytes();
        let agent = rib.agent_mut(EnbId(1));
        let cell = agent.cell_entry(CellId(0));
        for i in 0..16u16 {
            let mut node = UeNode {
                rnti: Rnti(0x100 + i),
                ..Default::default()
            };
            node.report.subband_cqi = vec![9; 13];
            cell.insert_ue(node);
        }
        assert!(rib.heap_bytes() > empty + 16 * 100);
    }

    #[test]
    fn staleness_epoch_preserves_subtree() {
        let mut rib = Rib::new();
        {
            let agent = rib.agent_mut(EnbId(1));
            let cell = agent.cell_entry(CellId(0));
            cell.insert_ue(UeNode {
                rnti: Rnti(0x100),
                ..UeNode::default()
            });
        }
        assert!(rib.stale_agents().is_empty());
        rib.agent_mut(EnbId(1)).mark_stale(Tti(500));
        // Repeated marking keeps the original epoch start.
        rib.agent_mut(EnbId(1)).mark_stale(Tti(900));
        assert_eq!(rib.stale_agents(), vec![(EnbId(1), Tti(500))]);
        assert!(rib.agent(EnbId(1)).unwrap().is_stale());
        // The subtree is a snapshot, not deleted.
        assert!(rib.ue(EnbId(1), CellId(0), Rnti(0x100)).is_some());
        rib.agent_mut(EnbId(1)).mark_fresh();
        assert!(!rib.agent(EnbId(1)).unwrap().is_stale());
        assert!(rib.stale_agents().is_empty());
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "single-writer")]
    fn locked_rib_rejects_writes() {
        let mut rib = Rib::new();
        rib.open_write_cycle(Tti(1));
        rib.close_write_cycle();
        rib.agent_mut(EnbId(1));
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    #[should_panic(expected = "monotonic")]
    fn write_cycle_epoch_must_advance() {
        let mut rib = Rib::new();
        rib.open_write_cycle(Tti(5));
        rib.open_write_cycle(Tti(5));
    }

    #[cfg(feature = "debug-invariants")]
    #[test]
    fn reopened_cycle_restores_writability() {
        let mut rib = Rib::new();
        rib.open_write_cycle(Tti(1));
        rib.agent_mut(EnbId(1));
        rib.close_write_cycle();
        rib.open_write_cycle(Tti(2));
        rib.agent_mut(EnbId(2));
        assert_eq!(rib.n_agents(), 2);
    }

    #[test]
    fn synced_subframe_reflects_last_sync() {
        let mut rib = Rib::new();
        let agent = rib.agent_mut(EnbId(1));
        assert_eq!(agent.synced_subframe(), None);
        agent.last_sync = Some((Tti(500), Tti(510)));
        assert_eq!(
            rib.agent(EnbId(1)).unwrap().synced_subframe(),
            Some(Tti(500))
        );
    }
}
