//! The FlexRAN master controller (paper §4.3.3), sharded.
//!
//! The master manages agent sessions, runs the single-writer RIB Updater
//! discipline, the Event Notification Service and the registered
//! applications, paced by the Task Manager in cycles of one TTI split
//! into two slots: first the RIB Updater, then the applications (the
//! paper's 20 % / 80 % division — here the split is a budget rather than
//! a pre-emption boundary, since neither slot ever approaches it in
//! practice; the per-slot wall-clock times are recorded per cycle, which
//! is exactly the data behind Fig. 8).
//!
//! Since the control-plane sharding (DESIGN.md §"Sharded control
//! plane"), the RIB slot is partitioned over [`RibShard`]s: each shard
//! owns a disjoint set of agents with their RIB subtrees, updater and
//! journal segment, so a harness can fan shard slots out on its worker
//! pool. A cycle is three steps:
//!
//! 1. [`MasterController::begin_cycle`] — serial: route limbo sessions
//!    (attached but not yet hello'd) to their owning shards.
//! 2. [`RibShard::run_rib_slot`] per shard — parallelizable: drain the
//!    shard's sessions through its single writer.
//! 3. [`MasterController::finish_cycle`] — serial barrier: merge the
//!    shards' event streams in agent-index order, run the apps slot
//!    against the shard-transparent [`Northbound`] facade, and route
//!    staged commands (and cross-shard handover notices) through the
//!    per-shard mailboxes.
//!
//! [`MasterController::run_cycle`] performs all three in order — the
//! serial execution every existing caller gets, bit-identical to the
//! fanned-out one.
//!
//! Two pacing modes (paper §4.3.3):
//! * **virtual time** — [`MasterController::run_cycle`] is called once
//!   per simulated TTI by a harness.
//! * **real time** — [`MasterController::run_realtime`] paces cycles at
//!   wall-clock 1 ms, for deployments over real TCP transports.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use flexran_proto::messages::delegation::VsfPush;
use flexran_proto::messages::stats::{ReportConfig, StatsRequest};
use flexran_proto::messages::{ConfigBundlePush, FlexranMessage, Header, ResyncRequest};
use flexran_proto::transport::Transport;
use flexran_proto::MessageCategory;
use flexran_types::budget::{BudgetStats, TtiBudget, DEFAULT_TTI_BUDGET_NS};
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

use crate::config::{
    AgentKpi, BundleAck, FleetKpi, RolloutAction, RolloutConfig, RolloutController, RolloutEvent,
    RolloutStatus,
};
use crate::journal::{encode_segments, split_segments, RibJournal};
use crate::northbound::{App, AppRegistry, Northbound, RibView};
use crate::rib::Rib;
use crate::shard::{
    merged_rib, CrossShardMsg, ReplayOp, RibShard, Session, ShardSpec, TaggedEvent,
};

/// Task Manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaskManagerConfig {
    /// Cycle length in wall-clock time (real-time mode).
    pub tti_duration: Duration,
    /// Fraction of the cycle budgeted to the RIB Updater slot.
    pub rib_slot_fraction: f64,
    /// Master TTIs of session silence before an agent is declared down
    /// (0 = session liveness tracking disabled). On the down edge the
    /// agent's RIB subtree is marked stale and an `AgentDown` event is
    /// delivered to applications; on the first message after it, the
    /// subtree is marked fresh, delegated state (report subscriptions,
    /// VSF pushes, policies) is replayed, and `AgentUp` is delivered.
    pub liveness_timeout: u64,
    /// Write cycles between RIB journal snapshot rewrites (0 = journaling
    /// disabled). With journaling on, every RIB-mutating agent message and
    /// every delegated-state send is appended to the owning shard's
    /// journal segment, and [`MasterController::recover`] can rebuild the
    /// RIB after a crash.
    pub journal_snapshot_every: u64,
    /// How agents are partitioned over RIB shards. `Auto` (the default)
    /// is one shard — the classic serial master.
    pub shards: ShardSpec,
    /// Per-cycle wall-time deadline fed to the [`TtiBudget`] monitor
    /// (nanoseconds; LTE subframe = 1 ms). Observability only: the
    /// monitor reports latency percentiles and over-budget counts but
    /// never feeds wall time back into scheduling, so determinism holds.
    pub tti_budget_ns: u64,
}

impl Default for TaskManagerConfig {
    fn default() -> Self {
        TaskManagerConfig {
            tti_duration: Duration::from_millis(1),
            rib_slot_fraction: 0.2,
            liveness_timeout: 0,
            journal_snapshot_every: 0,
            shards: ShardSpec::Auto,
            tti_budget_ns: DEFAULT_TTI_BUDGET_NS,
        }
    }
}

/// Counters of the master's session-liveness tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionLivenessStats {
    /// `AgentDown` edges detected.
    pub downs: u64,
    /// `AgentUp` edges (rejoins, including the replay of delegated state).
    pub ups: u64,
}

/// Wall-clock accounting of one cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleStats {
    pub rib_slot: Duration,
    pub apps_slot: Duration,
}

/// Accumulated accounting across cycles (Fig. 8's series).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleAccounting {
    pub cycles: u64,
    pub rib_total: Duration,
    pub apps_total: Duration,
}

impl CycleAccounting {
    pub fn mean_rib(&self) -> Duration {
        if self.cycles == 0 {
            Duration::ZERO
        } else {
            self.rib_total / self.cycles as u32
        }
    }

    pub fn mean_apps(&self) -> Duration {
        if self.cycles == 0 {
            Duration::ZERO
        } else {
            self.apps_total / self.cycles as u32
        }
    }

    /// Mean idle time per cycle against a TTI budget.
    pub fn mean_idle(&self, tti: Duration) -> Duration {
        tti.saturating_sub(self.mean_rib() + self.mean_apps())
    }
}

/// The master controller.
pub struct MasterController {
    config: TaskManagerConfig,
    /// The partitioned control plane. Shard index is stable for the
    /// master's lifetime; `owner` maps each known agent to its shard.
    shards: Vec<RibShard>,
    owner: BTreeMap<EnbId, usize>,
    /// Attached sessions that have not introduced themselves yet — they
    /// belong to no shard until their `Hello` names an agent.
    limbo: Vec<Session>,
    apps: AppRegistry,
    /// The shard-transparent northbound facade (apps-slot state: staged
    /// commands, conflict claims, app-path transaction ids).
    nb: Northbound,
    accounting: CycleAccounting,
    /// Management-path transaction ids (`send_to` and the limbo nudges).
    xid: u32,
    now: Tti,
    /// Delegated state recovered from the journal, owed to agents that
    /// have not re-introduced themselves since the restart. Adopted into
    /// the session (and replayed) when the agent's `Hello` arrives.
    pending_replay: BTreeMap<EnbId, Vec<ReplayOp>>,
    /// This incarnation was built by [`MasterController::recover`].
    recovered: bool,
    /// Next session attach index (the shard-count-invariant global order
    /// used for event merging and session-enumeration APIs).
    next_global_idx: u32,
    /// Handovers whose source and target agents live in different shards
    /// (each also posts a [`CrossShardMsg::HandoverNotice`]).
    cross_shard_handovers: u64,
    /// RIB-slot stopwatch, armed by `begin_cycle`, read by `finish_cycle`.
    cycle_start: Option<Instant>,
    /// Deadline monitor over whole cycles (RIB slot + apps slot) against
    /// `config.tti_budget_ns`. Purely observational.
    budget: TtiBudget,
    /// Latest journal record of the rollout controller (raw codec bytes;
    /// empty = no rollout ever staged). Written whenever the state
    /// machine transitions and appended to [`MasterController::journal_bytes`]
    /// as its own final segment, so recovery resumes the rollout.
    rollout_state: Vec<u8>,
    /// Reusable buffers for the per-cycle rollout step (KPI samples,
    /// drained acks, staged pushes) — the step stays heap-free in steady
    /// state once a rollout has engaged.
    kpi_scratch: Vec<AgentKpi>,
    ack_scratch: Vec<BundleAck>,
    action_scratch: Vec<RolloutAction>,
}

impl MasterController {
    pub fn new(config: TaskManagerConfig) -> Self {
        let n = config.shards.initial_shards();
        MasterController {
            config,
            shards: (0..n).map(|i| RibShard::new(i, n, None, &config)).collect(),
            owner: BTreeMap::new(),
            limbo: Vec::new(),
            apps: AppRegistry::new(),
            nb: Northbound::new(),
            accounting: CycleAccounting::default(),
            xid: 0,
            now: Tti::ZERO,
            pending_replay: BTreeMap::new(),
            recovered: false,
            next_global_idx: 0,
            cross_shard_handovers: 0,
            cycle_start: None,
            budget: TtiBudget::new(config.tti_budget_ns),
            rollout_state: Vec::new(),
            kpi_scratch: Vec::new(),
            ack_scratch: Vec::new(),
            action_scratch: Vec::new(),
        }
    }

    /// Rebuild a master from its journal after a crash. Each shard
    /// segment's snapshot and delta records are replayed through the
    /// owning shard's RIB Updater (the same single writer that built the
    /// state originally), every recovered agent subtree is marked stale
    /// at `now` — the data is a pre-crash epoch until the agent re-syncs
    /// — and the persisted delegated state is held pending, to be
    /// replayed when each agent's `Hello` arrives. Agent transports must
    /// be re-attached via [`MasterController::add_agent`]; sessions
    /// re-learn their identity from the agents' hellos. Accepts both the
    /// sharded `FXS1` container and a bare pre-sharding `FXJ1` journal.
    pub fn recover(config: TaskManagerConfig, journal_bytes: &[u8], now: Tti) -> Result<Self> {
        let segments = split_segments(journal_bytes)?;
        let mut states = Vec::with_capacity(segments.len());
        for seg in &segments {
            states.push(RibJournal::parse(seg)?);
        }
        let mut master = MasterController::new(config);
        master.now = now;
        master.recovered = true;
        for state in &states {
            for r in &state.rib_records {
                // Records route by agent id, so a journal written under
                // one shard spec recovers correctly under another. A
                // fresh shard RIB is writable until its first
                // open_write_cycle, so replay needs no cycle bracketing
                // (and recovery-time TTIs would violate the
                // monotonic-epoch assertion anyway).
                let idx = master.assign_owner(r.enb);
                let Some(shard) = master.shards.get_mut(idx) else {
                    continue;
                };
                shard.updater.apply(&mut shard.rib, r.enb, &r.msg, r.tti);
            }
        }
        for shard in &mut master.shards {
            let recovered_agents: Vec<EnbId> = shard.rib.agents().map(|a| a.enb_id).collect();
            for enb in recovered_agents {
                shard.updater.agent_down(&mut shard.rib, enb, now);
            }
        }
        for state in &states {
            for (enb, msgs) in &state.replay {
                let ops: Vec<ReplayOp> = msgs.iter().filter_map(ReplayOp::from_message).collect();
                if !ops.is_empty() {
                    master.pending_replay.entry(*enb).or_default().extend(ops);
                }
                // Seed the owning shard's journal so a twice-crashed
                // master still owes its agents the same delegated state.
                let idx = master.assign_owner(*enb);
                let Some(shard) = master.shards.get_mut(idx) else {
                    continue;
                };
                if let Some(journal) = shard.journal.as_mut() {
                    for msg in msgs {
                        journal.record_replay(*enb, msg);
                    }
                }
            }
        }
        for shard in &mut master.shards {
            if let Some(journal) = shard.journal.as_mut() {
                journal.compact(&shard.rib);
            }
        }
        // Resume the fleet rollout state machine from the last rollout
        // record across all segments (the current incarnation writes it
        // as its own final segment; older layouts may carry it anywhere).
        // Observation windows are volatile and restart: the recovered
        // machine re-opens the current phase's KPI window rather than
        // comparing counters across process epochs.
        if let Some(bytes) = states.iter().rev().find_map(|s| s.rollout.clone()) {
            master
                .nb
                .set_rollout(RolloutController::from_bytes(&bytes)?);
            master.rollout_state = bytes;
        }
        Ok(master)
    }

    /// Serialized journal of this incarnation, if journaling is on (what
    /// a deployment would keep fsynced; the sim harness carries it across
    /// a simulated crash). One segment per shard, in shard-index order.
    pub fn journal_bytes(&self) -> Option<Vec<u8>> {
        if self.config.journal_snapshot_every == 0 {
            return None;
        }
        let mut segments: Vec<Vec<u8>> = self
            .shards
            .iter()
            .filter_map(|s| s.journal.as_ref().map(|j| j.bytes()))
            .collect();
        if !self.rollout_state.is_empty() {
            // The rollout record gets its own final segment: it is
            // fleet-wide state that belongs to no shard, and a journal
            // written before any rollout stays byte-identical.
            let mut j = RibJournal::new(1);
            j.record_rollout(&self.rollout_state);
            segments.push(j.bytes());
        }
        Some(encode_segments(&segments))
    }

    /// Journal compaction count across all shard segments (diagnostics).
    pub fn journal_compactions(&self) -> Option<u64> {
        if self.config.journal_snapshot_every == 0 {
            return None;
        }
        Some(
            self.shards
                .iter()
                .filter_map(|s| s.journal.as_ref().map(|j| j.compactions()))
                .sum(),
        )
    }

    /// Detach all session transports, in attach order. Used by crash
    /// harnesses: the links outlive the master process, the sessions do
    /// not.
    pub fn take_transports(&mut self) -> Vec<Box<dyn Transport>> {
        let mut all: Vec<(u32, Box<dyn Transport>)> = self
            .limbo
            .drain(..)
            .map(|s| (s.global_idx, s.transport))
            .collect();
        for shard in &mut self.shards {
            all.extend(
                shard
                    .sessions
                    .drain(..)
                    .map(|s| (s.global_idx, s.transport)),
            );
        }
        all.sort_by_key(|(idx, _)| *idx);
        all.into_iter().map(|(_, t)| t).collect()
    }

    /// Attach an agent session (any transport). The session sits in
    /// limbo until its `Hello` names an agent, which routes it to the
    /// owning shard. Returns the session's attach index.
    pub fn add_agent(&mut self, transport: Box<dyn Transport>) -> usize {
        let idx = self.next_global_idx;
        self.next_global_idx += 1;
        self.limbo
            .push(Session::new(transport, idx, self.recovered));
        idx as usize
    }

    /// Register a northbound application.
    pub fn register_app(&mut self, app: Box<dyn App>) {
        self.apps.register(app);
    }

    /// Shard-transparent read view over the whole control plane (what
    /// the apps slot sees).
    pub fn view(&self) -> RibView<'_> {
        RibView::sharded(self.now, &self.shards).with_budget(self.budget.stats())
    }

    /// Clone-merge the shard forests into one owned RIB snapshot
    /// (recovery golden tests, debug digests, diagnostics — not a hot
    /// path; readers on the hot path use [`MasterController::view`]).
    pub fn merged_rib(&self) -> Rib {
        merged_rib(&self.shards)
    }

    /// The RIB shards, in shard-index order.
    pub fn shards(&self) -> &[RibShard] {
        &self.shards
    }

    /// Mutable shard access for harnesses that fan the per-shard RIB
    /// slots out on a worker pool between [`MasterController::begin_cycle`]
    /// and [`MasterController::finish_cycle`].
    pub fn shards_mut(&mut self) -> &mut [RibShard] {
        &mut self.shards
    }

    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Which shard owns `enb`, if the agent is known.
    pub fn shard_of(&self, enb: EnbId) -> Option<usize> {
        self.owner.get(&enb).copied()
    }

    /// Handovers observed whose source and target agents live in
    /// different shards (zero in single-shard runs by construction).
    pub fn cross_shard_handovers(&self) -> u64 {
        self.cross_shard_handovers
    }

    pub fn accounting(&self) -> CycleAccounting {
        self.accounting
    }

    /// Deadline-monitor snapshot: latency percentiles, worst case, and
    /// the over-budget cycle count against `config.tti_budget_ns`.
    pub fn budget_stats(&self) -> BudgetStats {
        self.budget.stats()
    }

    /// Cycles whose wall time exceeded the TTI budget so far.
    pub fn over_budget_cycles(&self) -> u64 {
        self.budget.stats().over_budget
    }

    /// Forget all deadline-monitor samples (e.g. after a warm-up phase)
    /// without touching the budget itself.
    pub fn reset_budget(&mut self) {
        self.budget.reset();
    }

    pub fn conflicts(&self) -> u64 {
        self.nb.conflicts()
    }

    pub fn app_names(&self) -> Vec<String> {
        self.apps.names()
    }

    /// Known agents, in session attach order.
    pub fn connected_agents(&self) -> Vec<EnbId> {
        let mut known: Vec<(u32, EnbId)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .sessions
                    .iter()
                    .filter_map(|s| s.enb_id.map(|e| (s.global_idx, e)))
            })
            .collect();
        known.sort_by_key(|(idx, _)| *idx);
        known.into_iter().map(|(_, e)| e).collect()
    }

    /// Agents whose sessions are currently considered down.
    pub fn downed_agents(&self) -> Vec<EnbId> {
        let mut down: Vec<(u32, EnbId)> = self
            .shards
            .iter()
            .flat_map(|shard| {
                shard
                    .sessions
                    .iter()
                    .filter(|s| s.down)
                    .filter_map(|s| s.enb_id.map(|e| (s.global_idx, e)))
            })
            .collect();
        down.sort_by_key(|(idx, _)| *idx);
        down.into_iter().map(|(_, e)| e).collect()
    }

    /// Liveness counters, summed over shards.
    pub fn liveness_stats(&self) -> SessionLivenessStats {
        let mut total = SessionLivenessStats::default();
        for shard in &self.shards {
            total.downs += shard.liveness.downs;
            total.ups += shard.liveness.ups;
        }
        total
    }

    /// Messages of one category sent so far on the session towards
    /// `enb`, as counted by the session transport. `None` when no
    /// session has identified itself as `enb` yet. Used by external
    /// conservation checks ("every command the master sent is accounted
    /// for at the agent"), e.g. the chaos-engine oracles.
    pub fn session_tx_messages(&self, enb: EnbId, cat: MessageCategory) -> Option<u64> {
        self.shards
            .iter()
            .flat_map(|shard| shard.sessions.iter())
            .find(|s| s.enb_id == Some(enb))
            .map(|s| s.transport.tx_counters().messages(cat))
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Send a message to an agent immediately (management path).
    pub fn send_to(&mut self, enb: EnbId, msg: FlexranMessage) -> Result<u32> {
        let xid = self.next_xid();
        let session = self
            .shards
            .iter_mut()
            .flat_map(|shard| shard.sessions.iter_mut())
            .find(|s| s.enb_id == Some(enb))
            .ok_or_else(|| FlexError::NotFound(format!("no session for {enb}")))?;
        session.transport.send(Header::with_xid(xid), &msg)?;
        Ok(xid)
    }

    fn record_replay(&mut self, enb: EnbId, op: ReplayOp) {
        let Some(&idx) = self.owner.get(&enb) else {
            return;
        };
        let Some(shard) = self.shards.get_mut(idx) else {
            return;
        };
        if let Some(journal) = shard.journal.as_mut() {
            journal.record_replay(enb, &op.to_message());
        }
        if let Some(session) = shard.sessions.iter_mut().find(|s| s.enb_id == Some(enb)) {
            session.replay.push(op);
        }
    }

    /// Subscribe to statistics from an agent.
    pub fn request_stats(&mut self, enb: EnbId, config: ReportConfig) -> Result<u32> {
        let xid = self.send_to(enb, FlexranMessage::StatsRequest(StatsRequest { config }))?;
        self.record_replay(enb, ReplayOp::Stats(config));
        Ok(xid)
    }

    /// Push a VSF (signing it as the trusted authority would).
    pub fn push_vsf(&mut self, enb: EnbId, mut push: VsfPush, sign: bool) -> Result<u32> {
        if sign {
            // The master holds the signing key in this model.
            sign_push_compat(&mut push);
        }
        let xid = self.send_to(enb, FlexranMessage::VsfPush(push.clone()))?;
        self.record_replay(enb, ReplayOp::Vsf(push));
        Ok(xid)
    }

    /// Send a policy reconfiguration document.
    pub fn reconfigure(&mut self, enb: EnbId, yaml: String) -> Result<u32> {
        let xid = self.send_to(
            enb,
            FlexranMessage::PolicyReconfiguration(flexran_proto::messages::PolicyReconfiguration {
                yaml: yaml.clone(),
            }),
        )?;
        self.record_replay(enb, ReplayOp::Policy(yaml));
        Ok(xid)
    }

    /// The shard an agent routes to under the configured spec, creating
    /// it on first sight (`PerAgent`). Idempotent per agent.
    fn assign_owner(&mut self, enb: EnbId) -> usize {
        if let Some(&idx) = self.owner.get(&enb) {
            return idx;
        }
        let idx = match self.config.shards {
            ShardSpec::Auto => 0,
            ShardSpec::Fixed(n) => enb.0 as usize % n.max(1),
            ShardSpec::PerAgent => {
                let idx = self.shards.len();
                self.shards
                    // lint:allow(alloc-reach) shard construction — once per newly-seen agent
                    .push(RibShard::new(idx, idx + 1, Some(enb), &self.config));
                idx
            }
        };
        self.owner.insert(enb, idx);
        idx
    }

    /// Serial cycle front: arm the RIB-slot stopwatch and route limbo
    /// sessions whose `Hello` arrived to their owning shards (the hello
    /// itself rides along in the session's carryover queue, so the shard
    /// folds it through its own single writer this same cycle).
    // lint:no-alloc — serial cycle front, runs every TTI
    // lint:serial-only — must never run inside a shard's RIB slot
    pub fn begin_cycle(&mut self, now: Tti) {
        self.now = now;
        // Wall-clock here only *measures* the slot (Fig. 8 accounting);
        // it never influences scheduling decisions.
        // lint:allow(wall-clock)
        self.cycle_start = Some(Instant::now());
        let mut i = 0;
        while i < self.limbo.len() {
            let mut routed: Option<EnbId> = None;
            {
                let Some(session) = self.limbo.get_mut(i) else {
                    break;
                };
                // lint:allow(alloc-reach) decode materializes owned messages — arrival-driven
                while let Ok(Some((header, msg))) = session.transport.try_recv() {
                    session.last_rx = Some(now);
                    if let FlexranMessage::Heartbeat(h) = &msg {
                        // Session-level probe: mirror it back even before
                        // the agent has introduced itself.
                        let _ = session
                            .transport
                            // lint:allow(alloc-reach) wire frame growth is pooled; ack is arrival-driven
                            .send(header, &FlexranMessage::HeartbeatAck(*h));
                    }
                    if let FlexranMessage::Hello(h) = &msg {
                        // Identity learned: hand the session (hello
                        // first) to the owning shard; it drains the rest
                        // of the queue there this cycle.
                        routed = Some(h.enb_id);
                        session.carryover.push_back((header, msg));
                        break;
                    }
                    // Pre-hello traffic carries no identity and is not
                    // folded into any RIB. On a recovered master it still
                    // proves an agent is on this transport, so nudge it
                    // (paced, retried until the `Hello` lands) to
                    // re-introduce itself and push full state.
                    if session.take_nudge(now) {
                        self.xid = self.xid.wrapping_add(1);
                        // lint:allow(alloc-reach) recovery nudge — paced, pre-hello only
                        let _ = session.transport.send(
                            Header::with_xid(self.xid),
                            &FlexranMessage::ResyncRequest(ResyncRequest {
                                enb_id: EnbId(0),
                                since_tti: 0,
                            }),
                        );
                    }
                }
            }
            let Some(enb) = routed else {
                i += 1;
                continue;
            };
            let mut session = self.limbo.remove(i);
            // A recovered master owes this agent its pre-crash delegated
            // state: adopt it into the session and flag the rejoin path,
            // which also clears the staleness epoch recovery opened.
            if let Some(ops) = self.pending_replay.remove(&enb) {
                session.replay = ops;
                session.rejoin_pending = true;
            }
            let idx = self.assign_owner(enb);
            if let Some(shard) = self.shards.get_mut(idx) {
                shard.sessions.push(session);
            }
        }
    }

    /// Move sessions a shard disowned (an agent restart re-hello'd with
    /// an identity the shard does not own) to their owning shards. The
    /// parked hello rides in the carryover queue and is folded by the
    /// new owner next cycle.
    // lint:serial-only — moves sessions across shards; single-writer only
    fn rehome_sessions(&mut self) {
        // lint:allow(alloc-reach) populated only when an agent restart re-hello'd
        let mut moving: Vec<(EnbId, Session)> = Vec::new();
        for shard in &mut self.shards {
            let mut i = 0;
            while i < shard.sessions.len() {
                let rehome = shard.sessions.get(i).and_then(|s| s.rehome_to);
                if rehome.is_some() {
                    let mut session = shard.sessions.remove(i);
                    session.enb_id = None;
                    if let Some(enb) = session.rehome_to.take() {
                        moving.push((enb, session));
                    }
                } else {
                    i += 1;
                }
            }
        }
        for (enb, session) in moving {
            let idx = self.assign_owner(enb);
            if let Some(shard) = self.shards.get_mut(idx) {
                shard.sessions.push(session);
            }
        }
    }

    /// Serial barrier after the per-shard RIB slots: merge the shards'
    /// event streams (agent-index order — bit-identical to the old
    /// serial loop for every shard count), run the apps slot against the
    /// shard-transparent facade, route staged commands through the
    /// cross-shard mailboxes, and account the cycle.
    // lint:no-alloc — per-TTI merge + apps slot; steady state is heap-free
    // lint:serial-only — must never run inside a shard's RIB slot
    pub fn finish_cycle(&mut self, now: Tti) -> CycleStats {
        self.rehome_sessions();
        let rib_slot = self
            .cycle_start
            .take()
            .map(|s| s.elapsed())
            .unwrap_or_default();

        // --------------------------- Apps slot --------------------------
        // Measurement only, as above. lint:allow(wall-clock)
        let apps_start = Instant::now();
        // `append` below steals the shards' already-allocated buffers and
        // events are rare, so steady state stays heap-free.
        // lint:allow(hot-alloc) Vec::new never allocates
        let mut events: Vec<TaggedEvent> = Vec::new();
        for shard in &mut self.shards {
            events.append(&mut shard.events);
        }
        // The deterministic merge: drain events first (per-session order
        // within), then rejoins, then downs — each phase in global
        // session-attach order, exactly the serial loop's emission order.
        events.sort_by_key(|e| (e.phase, e.order));
        for app in self.apps.iter_mut() {
            let view = RibView::sharded(now, &self.shards).with_budget(self.budget.stats());
            let mut ctl = self.nb.control();
            for ev in &events {
                app.on_event(&ev.event, &view, &mut ctl);
            }
            app.on_cycle(&view, &mut ctl);
        }
        // Route staged commands to the owning shards' mailboxes. A
        // handover whose target agent lives in another shard additionally
        // posts a coordination notice to that shard.
        for (enb, header, msg) in self.nb.take_staged() {
            if let FlexranMessage::HandoverCommand(cmd) = &msg {
                let src = self.owner.get(&enb).copied();
                let dst = self.owner.get(&EnbId(cmd.target_enb)).copied();
                if let (Some(src), Some(dst)) = (src, dst) {
                    if src != dst {
                        self.cross_shard_handovers += 1;
                        if let Some(shard) = self.shards.get_mut(dst) {
                            shard.mailbox.push(CrossShardMsg::HandoverNotice {
                                from: enb,
                                to: EnbId(cmd.target_enb),
                            });
                        }
                    }
                }
            }
            let Some(&idx) = self.owner.get(&enb) else {
                // No session ever introduced itself as this agent — the
                // command has nowhere to go (same as the pre-sharding
                // dispatch loop).
                continue;
            };
            if let Some(shard) = self.shards.get_mut(idx) {
                shard
                    .mailbox
                    .push(CrossShardMsg::Command { enb, header, msg });
            }
        }
        // Fleet rollout step: gated on engagement so the pre-rollout
        // per-cycle cost is zero (and heap-free).
        if self.nb.rollout().is_engaged() {
            self.step_rollout(now);
        }
        for shard in &mut self.shards {
            shard.drain_mailbox();
        }
        // Old scheduling claims can never conflict again.
        self.nb.expire_claims_before(Tti(now.0.saturating_sub(200)));
        let apps_slot = apps_start.elapsed();

        self.accounting.cycles += 1;
        self.accounting.rib_total += rib_slot;
        self.accounting.apps_total += apps_slot;
        self.budget.record((rib_slot + apps_slot).as_nanos() as u64);
        CycleStats {
            rib_slot,
            apps_slot,
        }
    }

    /// One write cycle's worth of fleet-rollout work: assemble the KPI
    /// sample (ascending agent id — deterministic for every shard
    /// layout), drain the shards' bundle acks, advance the state machine
    /// by at most one transition, route its pushes through the owning
    /// shards' mailboxes (drained right after, same cycle), and journal
    /// the state whenever it transitions.
    // lint:serial-only — reads fleet-wide state across shards; barrier only
    fn step_rollout(&mut self, now: Tti) {
        self.kpi_scratch.clear();
        self.ack_scratch.clear();
        self.action_scratch.clear();
        let mut rejected_updates = 0;
        for shard in &mut self.shards {
            rejected_updates += shard.updater.rejected_updates;
            self.ack_scratch.append(&mut shard.config_acks);
        }
        // `owner` iterates in ascending agent-id order; an agent known
        // from the journal but not yet re-attached samples as down.
        for (&enb, &idx) in &self.owner {
            let Some(shard) = self.shards.get(idx) else {
                continue;
            };
            let goodput = shard
                .rib
                .agent(enb)
                .map(|a| {
                    a.cells()
                        .iter()
                        .filter_map(|c| c.last_report.as_ref())
                        .map(|r| r.dl_prbs_used_total)
                        .sum()
                })
                .unwrap_or(0);
            let session = shard.sessions.iter().find(|s| s.enb_id == Some(enb));
            self.kpi_scratch.push(AgentKpi {
                enb,
                goodput,
                down: session.map(|s| s.down).unwrap_or(true),
                applied: session.map(|s| s.applied_config).unwrap_or(0),
            });
        }
        let fleet = FleetKpi {
            agents: &self.kpi_scratch,
            rejected_updates,
            // Wall-clock derived; only consulted when the (off-by-default)
            // over-budget oracle is enabled.
            over_budget_ttis: self.budget.stats().over_budget,
        };
        let mut actions = std::mem::take(&mut self.action_scratch);
        self.nb
            .rollout_mut()
            .step(now, &fleet, &self.ack_scratch, &mut actions);
        for action in actions.drain(..) {
            let RolloutAction::Push { enb, bundle } = action;
            let xid = self.next_xid();
            let Some(&idx) = self.owner.get(&enb) else {
                continue;
            };
            if let Some(shard) = self.shards.get_mut(idx) {
                // lint:allow(alloc-reach) bundle push — paced, rollout-only
                shard.mailbox.push(CrossShardMsg::Command {
                    enb,
                    header: Header::with_xid(xid),
                    msg: FlexranMessage::ConfigBundlePush(ConfigBundlePush {
                        enb_id: enb,
                        bundle,
                    }),
                });
            }
        }
        self.action_scratch = actions;
        if self.nb.rollout_mut().take_dirty() {
            // lint:allow(alloc-reach) journal write — once per state transition
            self.rollout_state = self.nb.rollout().to_bytes();
        }
    }

    // ------------------------------------------------------------------
    // Fleet config rollout (northbound facade v3, delegated)
    // ------------------------------------------------------------------

    /// Stage a signed config bundle and start its canary-first rollout.
    /// Returns the assigned version. Errors while a rollout is in flight.
    pub fn apply_config_bundle(
        &mut self,
        policy_yaml: String,
        vsf_key: String,
        scheduler: String,
        canary: EnbId,
        cfg: RolloutConfig,
    ) -> Result<u64> {
        let now = self.now;
        self.nb
            .apply_bundle(now, policy_yaml, vsf_key, scheduler, canary, cfg)
    }

    /// Where the fleet rollout stands.
    pub fn rollout_status(&self) -> RolloutStatus {
        self.nb.rollout_status()
    }

    /// The journaled rollout audit trail.
    pub fn rollout_history(&self) -> &[RolloutEvent] {
        self.nb.rollout_history()
    }

    /// Abort the in-flight rollout, rolling back whatever was pushed.
    pub fn abort_rollout(&mut self) -> Result<()> {
        let now = self.now;
        self.nb.abort_rollout(now)
    }

    /// Every bundle signature this master has ever issued. External
    /// conservation checks (chaos oracle #9) assert no agent runs a
    /// config outside this set.
    pub fn issued_config_signatures(&self) -> Vec<u64> {
        self.nb.rollout().issued_signatures()
    }

    /// The config signature agent `enb` last advertised (None = no
    /// session has identified itself as `enb`).
    pub fn agent_applied_config(&self, enb: EnbId) -> Option<u64> {
        self.shards
            .iter()
            .flat_map(|shard| shard.sessions.iter())
            .find(|s| s.enb_id == Some(enb))
            .map(|s| s.applied_config)
    }

    /// Run one Task Manager cycle at master time `now`, serially:
    /// `begin_cycle`, every shard's RIB slot in shard-index order, then
    /// `finish_cycle`. Harnesses with a worker pool may instead fan the
    /// shard slots out between the two serial halves — the result is
    /// bit-identical.
    pub fn run_cycle(&mut self, now: Tti) -> CycleStats {
        self.begin_cycle(now);
        for shard in &mut self.shards {
            shard.run_rib_slot(now);
        }
        self.finish_cycle(now)
    }

    /// Real-time mode: run cycles paced at the configured TTI duration
    /// for `duration`, sleeping out each cycle's idle time.
    pub fn run_realtime(&mut self, duration: Duration) {
        // Real-time mode paces cycles by the wall clock by definition;
        // deterministic runs use `run_cycle` under a virtual clock.
        // lint:allow(wall-clock)
        let start = Instant::now();
        let mut tti = self.now;
        while start.elapsed() < duration {
            // Pacing, as above. lint:allow(wall-clock)
            let cycle_start = Instant::now();
            tti += 1;
            self.run_cycle(tti);
            let spent = cycle_start.elapsed();
            if spent < self.config.tti_duration {
                std::thread::sleep(self.config.tti_duration - spent);
            }
        }
    }
}

/// Signing helper re-exported here so the controller crate does not
/// depend on the agent crate (the key/algorithm pair must match
/// `flexran-agent`'s verifier; the shared-constant duplication is the
/// model's stand-in for PKI).
fn sign_push_compat(push: &mut VsfPush) {
    const SIGNING_KEY: u64 = 0x46_4C_45_58_52_41_4E_21;
    let mut h = SIGNING_KEY ^ 0xcbf29ce484222325;
    let mut feed = |data: &[u8]| {
        for b in data {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    feed(push.module.as_bytes());
    feed(&[0]);
    feed(push.vsf.as_bytes());
    feed(&[0]);
    feed(push.name.as_bytes());
    feed(&[0]);
    match &push.artifact {
        flexran_proto::messages::VsfArtifact::Registry { key } => {
            feed(&[0]);
            feed(key.as_bytes());
        }
        flexran_proto::messages::VsfArtifact::Dsl { source } => {
            feed(&[1]);
            feed(source.as_bytes());
        }
    }
    push.signature = h.to_be_bytes().to_vec();
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::northbound::ControlHandle;
    use crate::shard::RESYNC_NUDGE_PERIOD;
    use crate::updater::NotifiedEvent;
    use flexran_proto::messages::Hello;
    use flexran_proto::transport::channel_pair;

    #[test]
    fn sessions_learn_identity_from_hello() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(7),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        assert_eq!(master.connected_agents(), vec![EnbId(7)]);
        assert!(master.view().agent(EnbId(7)).is_some());
        assert_eq!(master.shard_of(EnbId(7)), Some(0));
        // Messages to unknown agents error.
        assert!(master
            .send_to(EnbId(9), FlexranMessage::EchoRequest(Default::default()))
            .is_err());
        // Messages to known agents arrive.
        master
            .send_to(EnbId(7), FlexranMessage::EchoRequest(Default::default()))
            .unwrap();
        assert!(agent_side.try_recv().unwrap().is_some());
    }

    #[test]
    fn fixed_sharding_partitions_agents_by_id() {
        let mut master = MasterController::new(TaskManagerConfig {
            shards: ShardSpec::Fixed(2),
            ..TaskManagerConfig::default()
        });
        assert_eq!(master.n_shards(), 2);
        let mut agent_sides = Vec::new();
        for i in 1..=3u32 {
            let (mut agent_side, master_side) = channel_pair();
            master.add_agent(Box::new(master_side));
            agent_side
                .send(
                    Header::default(),
                    &FlexranMessage::Hello(Hello {
                        enb_id: EnbId(i),
                        n_cells: 1,
                        capabilities: vec![],
                        applied_config: 0,
                    }),
                )
                .unwrap();
            agent_sides.push(agent_side);
        }
        master.run_cycle(Tti(0));
        // Attach order is preserved across shards; ownership is id mod n.
        assert_eq!(
            master.connected_agents(),
            vec![EnbId(1), EnbId(2), EnbId(3)]
        );
        assert_eq!(master.shard_of(EnbId(1)), Some(1));
        assert_eq!(master.shard_of(EnbId(2)), Some(0));
        assert_eq!(master.shard_of(EnbId(3)), Some(1));
        // Each agent's subtree lives in exactly its owner's shard.
        for (enb, owner) in [(EnbId(1), 1), (EnbId(2), 0), (EnbId(3), 1)] {
            for (idx, shard) in master.shards().iter().enumerate() {
                assert_eq!(
                    shard.rib().agent(enb).is_some(),
                    idx == owner,
                    "agent {enb} must be resident only in shard {owner}"
                );
            }
        }
        // The shard-transparent view sees the union.
        assert_eq!(master.view().n_agents(), 3);
        assert_eq!(master.merged_rib().n_agents(), 3);
        // Management sends still route by agent id.
        master
            .send_to(EnbId(2), FlexranMessage::EchoRequest(Default::default()))
            .unwrap();
        assert!(agent_sides[1].try_recv().unwrap().is_some());
    }

    #[test]
    fn per_agent_sharding_allocates_on_hello() {
        let mut master = MasterController::new(TaskManagerConfig {
            shards: ShardSpec::PerAgent,
            ..TaskManagerConfig::default()
        });
        assert_eq!(master.n_shards(), 0);
        let mut links = Vec::new();
        for i in [5u32, 9] {
            let (mut agent_side, master_side) = channel_pair();
            master.add_agent(Box::new(master_side));
            agent_side
                .send(
                    Header::default(),
                    &FlexranMessage::Hello(Hello {
                        enb_id: EnbId(i),
                        n_cells: 1,
                        capabilities: vec![],
                        applied_config: 0,
                    }),
                )
                .unwrap();
            master.run_cycle(Tti(i as u64));
            links.push(agent_side);
        }
        assert_eq!(master.n_shards(), 2);
        assert_eq!(master.shard_of(EnbId(5)), Some(0));
        assert_eq!(master.shard_of(EnbId(9)), Some(1));
        assert_eq!(master.view().n_agents(), 2);
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        for t in 0..10 {
            master.run_cycle(Tti(t));
        }
        let acc = master.accounting();
        assert_eq!(acc.cycles, 10);
        assert!(acc.mean_idle(Duration::from_millis(1)) > Duration::from_micros(500));
    }

    struct CountingApp {
        cycles: std::sync::Arc<std::sync::atomic::AtomicU64>,
        events: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl App for CountingApp {
        fn name(&self) -> &str {
            "counting"
        }
        fn on_cycle(&mut self, _rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {
            self.cycles
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn on_event(
            &mut self,
            _ev: &NotifiedEvent,
            _rib: &RibView<'_>,
            _ctl: &mut ControlHandle<'_>,
        ) {
            self.events
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn apps_get_cycles_and_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let cycles = Arc::new(AtomicU64::new(0));
        let events = Arc::new(AtomicU64::new(0));
        let mut master = MasterController::new(TaskManagerConfig::default());
        master.register_app(Box::new(CountingApp {
            cycles: cycles.clone(),
            events: events.clone(),
        }));
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(1),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::EventNotification(flexran_proto::messages::EventNotification {
                    enb_id: EnbId(1),
                    kind: flexran_proto::messages::events::EventKind::SchedulingRequest,
                    ..Default::default()
                }),
            )
            .unwrap();
        for t in 0..5 {
            master.run_cycle(Tti(t));
        }
        assert_eq!(cycles.load(Ordering::Relaxed), 5);
        assert_eq!(events.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn session_timeout_marks_stale_and_rejoin_replays() {
        let mut master = MasterController::new(TaskManagerConfig {
            liveness_timeout: 20,
            ..TaskManagerConfig::default()
        });
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(3),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        // Delegate state that must survive the outage.
        master
            .request_stats(
                EnbId(3),
                flexran_proto::messages::stats::ReportConfig::default(),
            )
            .unwrap();
        master
            .reconfigure(
                EnbId(3),
                "mac:\n  dl_ue_scheduler:\n    behavior: remote-stub\n".into(),
            )
            .unwrap();
        while agent_side.try_recv().unwrap().is_some() {}
        // Silence past the timeout → down edge, stale subtree.
        for t in 1..=25 {
            master.run_cycle(Tti(t));
        }
        assert_eq!(master.downed_agents(), vec![EnbId(3)]);
        assert_eq!(master.liveness_stats().downs, 1);
        let rib = master.merged_rib();
        let agent = rib.agent(EnbId(3)).unwrap();
        assert!(agent.is_stale());
        assert_eq!(agent.stale_since, Some(Tti(20)));
        // A heartbeat from the agent → up edge, ack, and state replay.
        agent_side
            .send(
                Header::with_xid(1),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
                    seq: 4,
                    tti: 26,
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(26));
        assert!(master.downed_agents().is_empty());
        assert_eq!(master.liveness_stats().ups, 1);
        assert!(!master.view().is_stale(EnbId(3)));
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(
            kinds,
            vec![
                "heartbeat-ack",
                "resync-request",
                "stats-request",
                "policy-reconfiguration"
            ],
            "ack, then the re-sync solicitation, then the delegated state in order"
        );
    }

    #[test]
    fn master_recovers_rib_and_replays_delegated_state_from_journal() {
        let config = TaskManagerConfig {
            liveness_timeout: 20,
            journal_snapshot_every: 4,
            ..TaskManagerConfig::default()
        };
        let mut master = MasterController::new(config);
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec!["dl_scheduling".into()],
                    applied_config: 0,
                }),
            )
            .unwrap();
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::StatsReply(flexran_proto::messages::StatsReply {
                    enb_id: EnbId(5),
                    tti: 1,
                    cells: vec![],
                    ues: vec![flexran_proto::messages::UeReport {
                        rnti: 0x100,
                        cell: 0,
                        connected: true,
                        wideband_cqi: 13,
                        ..Default::default()
                    }],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        master
            .request_stats(
                EnbId(5),
                flexran_proto::messages::stats::ReportConfig::default(),
            )
            .unwrap();
        // Enough cycles to force at least one snapshot compaction, so the
        // recovery path exercises snapshot + deltas, not deltas alone.
        for t in 1..=6 {
            master.run_cycle(Tti(t));
        }
        assert!(master.journal_compactions().unwrap() >= 1);
        let pre_crash_rib = master.merged_rib();
        let journal = master.journal_bytes().unwrap();
        let transports = master.take_transports();
        drop(master); // the crash

        let mut master = MasterController::recover(config, &journal, Tti(50)).unwrap();
        for t in transports {
            master.add_agent(t);
        }
        // The forest is back, but stale: it is a pre-crash epoch.
        let rib = master.merged_rib();
        assert_eq!(rib.n_ues(), 1);
        let agent = rib.agent(EnbId(5)).unwrap();
        assert!(agent.is_stale());
        assert_eq!(agent.stale_since, Some(Tti(50)));
        assert_eq!(
            rib.ue(
                EnbId(5),
                flexran_types::ids::CellId(0),
                flexran_types::ids::Rnti(0x100)
            )
            .unwrap()
            .report
            .wideband_cqi,
            13
        );
        {
            let mut recovered = master.merged_rib();
            recovered.agent_mut(EnbId(5)).mark_fresh();
            assert_eq!(
                recovered, pre_crash_rib,
                "journal round-trip must reproduce the RIB exactly (modulo the recovery staleness epoch)"
            );
        }
        while agent_side.try_recv().unwrap().is_some() {}
        // Pre-hello traffic on a recovered master draws the resync nudge.
        agent_side
            .send(
                Header::with_xid(1),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
                    seq: 1,
                    tti: 51,
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(51));
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(kinds, vec!["heartbeat-ack", "resync-request"]);
        // The agent re-introduces itself: staleness clears and the
        // delegated state recovered from the journal is replayed.
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec!["dl_scheduling".into()],
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(52));
        assert!(!master.view().is_stale(EnbId(5)));
        assert_eq!(master.liveness_stats().ups, 1);
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(
            kinds,
            vec!["resync-request", "stats-request"],
            "rejoin re-sync plus the journal-recovered subscription"
        );
    }

    #[test]
    fn recovery_nudge_is_retried_until_the_hello_lands() {
        // The resync nudge — or the Hello it provokes — can be lost on a
        // faulty link. A one-shot nudge would then strand the agent: it
        // keeps heartbeating (and believes it is connected, since limbo
        // acks probes), but its subtree stays a stale pre-crash epoch
        // forever. The nudge must re-arm while the session is pre-hello.
        let config = TaskManagerConfig {
            journal_snapshot_every: 4,
            ..TaskManagerConfig::default()
        };
        let mut master = MasterController::new(config);
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        master
            .request_stats(
                EnbId(5),
                flexran_proto::messages::stats::ReportConfig::default(),
            )
            .unwrap();
        master.run_cycle(Tti(1));
        let journal = master.journal_bytes().unwrap();
        let transports = master.take_transports();
        drop(master); // the crash

        let mut master = MasterController::recover(config, &journal, Tti(50)).unwrap();
        for t in transports {
            master.add_agent(t);
        }
        while agent_side.try_recv().unwrap().is_some() {}
        // The agent heartbeats but its Hello "keeps getting lost": the
        // master re-solicits it every RESYNC_NUDGE_PERIOD TTIs.
        let mut nudges = 0;
        for t in (51..=121).step_by(10) {
            agent_side
                .send(
                    Header::with_xid(1),
                    &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
                        seq: t,
                        tti: t,
                        applied_config: 0,
                    }),
                )
                .unwrap();
            master.run_cycle(Tti(t));
            while let Ok(Some((_, m))) = agent_side.try_recv() {
                if m.kind() == "resync-request" {
                    nudges += 1;
                }
            }
        }
        assert!(
            (2..=4).contains(&nudges),
            "paced retries while pre-hello (one per {RESYNC_NUDGE_PERIOD} TTIs), got {nudges}"
        );
        assert!(master.view().is_stale(EnbId(5)));
        // A Hello that finally lands ends the solicitation.
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec![],
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(130));
        assert!(!master.view().is_stale(EnbId(5)));
        while agent_side.try_recv().unwrap().is_some() {}
        agent_side
            .send(
                Header::with_xid(1),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
                    seq: 131,
                    tti: 131,
                    applied_config: 0,
                }),
            )
            .unwrap();
        master.run_cycle(Tti(131));
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(kinds, vec!["heartbeat-ack"], "no nudges after the hello");
    }

    #[test]
    fn sharded_journal_recovers_under_a_different_spec() {
        // Write the journal under Fixed(2); recover under Auto. Records
        // route by agent id, so the image is spec-portable.
        let write_config = TaskManagerConfig {
            journal_snapshot_every: 4,
            shards: ShardSpec::Fixed(2),
            ..TaskManagerConfig::default()
        };
        let mut master = MasterController::new(write_config);
        let mut links = Vec::new();
        for i in 1..=2u32 {
            let (mut agent_side, master_side) = channel_pair();
            master.add_agent(Box::new(master_side));
            agent_side
                .send(
                    Header::default(),
                    &FlexranMessage::Hello(Hello {
                        enb_id: EnbId(i),
                        n_cells: 1,
                        capabilities: vec![],
                        applied_config: 0,
                    }),
                )
                .unwrap();
            links.push(agent_side);
        }
        for t in 0..6 {
            master.run_cycle(Tti(t));
        }
        let pre_crash = master.merged_rib();
        let journal = master.journal_bytes().unwrap();

        let recover_config = TaskManagerConfig {
            journal_snapshot_every: 4,
            ..TaskManagerConfig::default()
        };
        let recovered = MasterController::recover(recover_config, &journal, Tti(50)).unwrap();
        assert_eq!(recovered.n_shards(), 1);
        let mut rib = recovered.merged_rib();
        for i in 1..=2u32 {
            assert!(rib.agent(EnbId(i)).unwrap().is_stale());
            rib.agent_mut(EnbId(i)).mark_fresh();
        }
        assert_eq!(rib, pre_crash);
    }

    #[test]
    fn recover_rejects_corrupt_journals() {
        let config = TaskManagerConfig {
            journal_snapshot_every: 1,
            ..TaskManagerConfig::default()
        };
        assert!(MasterController::recover(config, b"not a journal", Tti(0)).is_err());
        assert!(MasterController::recover(config, &[], Tti(0)).is_err());
    }

    #[test]
    fn signing_matches_agent_verifier() {
        let mut push = VsfPush {
            module: "mac".into(),
            vsf: "dl_ue_scheduler".into(),
            name: "x".into(),
            artifact: flexran_proto::messages::VsfArtifact::Registry {
                key: "round-robin".into(),
            },
            signature: vec![],
        };
        sign_push_compat(&mut push);
        flexran_agent::vsf::verify_push(&push).expect("controller signature must verify");
    }
}
