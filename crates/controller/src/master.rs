//! The FlexRAN master controller (paper §4.3.3).
//!
//! The master manages agent sessions, runs the single-writer RIB Updater,
//! the Event Notification Service and the registered applications, paced
//! by the Task Manager in cycles of one TTI split into two slots: first
//! the RIB Updater, then the applications (the paper's 20 % / 80 %
//! division — here the split is a budget rather than a pre-emption
//! boundary, since neither slot ever approaches it in practice; the
//! per-slot wall-clock times are recorded per cycle, which is exactly the
//! data behind Fig. 8).
//!
//! Two pacing modes (paper §4.3.3):
//! * **virtual time** — [`MasterController::run_cycle`] is called once
//!   per simulated TTI by a harness.
//! * **real time** — [`MasterController::run_realtime`] paces cycles at
//!   wall-clock 1 ms, for deployments over real TCP transports.

use std::collections::BTreeMap;
use std::time::{Duration, Instant};

use flexran_proto::messages::delegation::VsfPush;
use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::stats::{ReportConfig, StatsRequest};
use flexran_proto::messages::{EventNotification, FlexranMessage, Header, ResyncRequest};
use flexran_proto::transport::Transport;
use flexran_proto::MessageCategory;
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

use crate::journal::{mutates_rib, RibJournal};
use crate::northbound::{App, AppRegistry, ConflictGuard, ControlHandle, RibView};
use crate::rib::Rib;
use crate::updater::{NotifiedEvent, RibUpdater};

/// Task Manager configuration.
#[derive(Debug, Clone, Copy)]
pub struct TaskManagerConfig {
    /// Cycle length in wall-clock time (real-time mode).
    pub tti_duration: Duration,
    /// Fraction of the cycle budgeted to the RIB Updater slot.
    pub rib_slot_fraction: f64,
    /// Master TTIs of session silence before an agent is declared down
    /// (0 = session liveness tracking disabled). On the down edge the
    /// agent's RIB subtree is marked stale and an `AgentDown` event is
    /// delivered to applications; on the first message after it, the
    /// subtree is marked fresh, delegated state (report subscriptions,
    /// VSF pushes, policies) is replayed, and `AgentUp` is delivered.
    pub liveness_timeout: u64,
    /// Write cycles between RIB journal snapshot rewrites (0 = journaling
    /// disabled). With journaling on, every RIB-mutating agent message and
    /// every delegated-state send is appended to the journal, and
    /// [`MasterController::recover`] can rebuild the RIB after a crash.
    pub journal_snapshot_every: u64,
}

impl Default for TaskManagerConfig {
    fn default() -> Self {
        TaskManagerConfig {
            tti_duration: Duration::from_millis(1),
            rib_slot_fraction: 0.2,
            liveness_timeout: 0,
            journal_snapshot_every: 0,
        }
    }
}

/// Counters of the master's session-liveness tracker.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SessionLivenessStats {
    /// `AgentDown` edges detected.
    pub downs: u64,
    /// `AgentUp` edges (rejoins, including the replay of delegated state).
    pub ups: u64,
}

/// Delegated state the master replays to a rejoining agent, in original
/// order (paper §4.3.2: the master, not the agent, owns policy intent).
#[derive(Debug, Clone)]
enum ReplayOp {
    Stats(ReportConfig),
    Vsf(VsfPush),
    Policy(String),
}

impl ReplayOp {
    fn to_message(&self) -> FlexranMessage {
        match self {
            ReplayOp::Stats(config) => {
                FlexranMessage::StatsRequest(StatsRequest { config: *config })
            }
            ReplayOp::Vsf(push) => FlexranMessage::VsfPush(push.clone()),
            ReplayOp::Policy(yaml) => FlexranMessage::PolicyReconfiguration(
                flexran_proto::messages::PolicyReconfiguration { yaml: yaml.clone() },
            ),
        }
    }

    /// Inverse of [`ReplayOp::to_message`] — journal recovery turns the
    /// persisted replay section back into ops. Non-delegation kinds in
    /// the section are ignored (a corrupt-but-decodable journal must not
    /// inject arbitrary commands).
    fn from_message(msg: &FlexranMessage) -> Option<ReplayOp> {
        match msg {
            FlexranMessage::StatsRequest(r) => Some(ReplayOp::Stats(r.config)),
            FlexranMessage::VsfPush(p) => Some(ReplayOp::Vsf(p.clone())),
            FlexranMessage::PolicyReconfiguration(p) => Some(ReplayOp::Policy(p.yaml.clone())),
            _ => None,
        }
    }
}

/// Wall-clock accounting of one cycle.
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleStats {
    pub rib_slot: Duration,
    pub apps_slot: Duration,
}

/// Accumulated accounting across cycles (Fig. 8's series).
#[derive(Debug, Clone, Copy, Default)]
pub struct CycleAccounting {
    pub cycles: u64,
    pub rib_total: Duration,
    pub apps_total: Duration,
}

impl CycleAccounting {
    pub fn mean_rib(&self) -> Duration {
        if self.cycles == 0 {
            Duration::ZERO
        } else {
            self.rib_total / self.cycles as u32
        }
    }

    pub fn mean_apps(&self) -> Duration {
        if self.cycles == 0 {
            Duration::ZERO
        } else {
            self.apps_total / self.cycles as u32
        }
    }

    /// Mean idle time per cycle against a TTI budget.
    pub fn mean_idle(&self, tti: Duration) -> Duration {
        tti.saturating_sub(self.mean_rib() + self.mean_apps())
    }
}

struct Session {
    transport: Box<dyn Transport>,
    enb_id: Option<EnbId>,
    /// Master time of the last message from this agent (None = silent so
    /// far; the timeout clock starts at the first message).
    last_rx: Option<Tti>,
    /// Session currently considered dead.
    down: bool,
    /// Delegated-state log replayed on rejoin.
    replay: Vec<ReplayOp>,
    /// Recovered-master sessions don't know which agent is on the other
    /// end until a `Hello` arrives; the first pre-hello traffic triggers
    /// one `ResyncRequest` nudge so agents that never noticed the outage
    /// (shorter than their degraded threshold) still re-introduce
    /// themselves and push full state.
    needs_resync_nudge: bool,
}

/// The master controller.
pub struct MasterController {
    config: TaskManagerConfig,
    rib: Rib,
    updater: RibUpdater,
    sessions: Vec<Session>,
    apps: AppRegistry,
    guard: ConflictGuard,
    accounting: CycleAccounting,
    liveness: SessionLivenessStats,
    xid: u32,
    now: Tti,
    /// RIB durability (None when `journal_snapshot_every` is 0).
    journal: Option<RibJournal>,
    /// Delegated state recovered from the journal, owed to agents that
    /// have not re-introduced themselves since the restart. Adopted into
    /// the session (and replayed) when the agent's `Hello` arrives.
    pending_replay: BTreeMap<EnbId, Vec<ReplayOp>>,
    /// This incarnation was built by [`MasterController::recover`].
    recovered: bool,
}

impl MasterController {
    pub fn new(config: TaskManagerConfig) -> Self {
        MasterController {
            config,
            rib: Rib::new(),
            updater: RibUpdater::new(),
            sessions: Vec::new(),
            apps: AppRegistry::new(),
            guard: ConflictGuard::new(),
            accounting: CycleAccounting::default(),
            liveness: SessionLivenessStats::default(),
            xid: 0,
            now: Tti::ZERO,
            journal: (config.journal_snapshot_every > 0)
                .then(|| RibJournal::new(config.journal_snapshot_every)),
            pending_replay: BTreeMap::new(),
            recovered: false,
        }
    }

    /// Rebuild a master from its journal after a crash. The snapshot and
    /// delta records are replayed through the RIB Updater (the same
    /// single writer that built the state originally), every recovered
    /// agent subtree is marked stale at `now` — the data is a pre-crash
    /// epoch until the agent re-syncs — and the persisted delegated state
    /// is held pending, to be replayed when each agent's `Hello` arrives.
    /// Agent transports must be re-attached via
    /// [`MasterController::add_agent`]; sessions re-learn their identity
    /// from the agents' hellos.
    pub fn recover(config: TaskManagerConfig, journal_bytes: &[u8], now: Tti) -> Result<Self> {
        let state = RibJournal::parse(journal_bytes)?;
        let mut master = MasterController::new(config);
        master.now = now;
        master.recovered = true;
        for r in &state.rib_records {
            // A fresh RIB is writable until the first open_write_cycle,
            // so replay needs no cycle bracketing (and recovery-time TTIs
            // would violate the monotonic-epoch assertion anyway).
            master.updater.apply(&mut master.rib, r.enb, &r.msg, r.tti);
        }
        let recovered_agents: Vec<EnbId> = master.rib.agents().map(|a| a.enb_id).collect();
        for enb in recovered_agents {
            master.updater.agent_down(&mut master.rib, enb, now);
        }
        for (enb, msgs) in &state.replay {
            let ops: Vec<ReplayOp> = msgs.iter().filter_map(ReplayOp::from_message).collect();
            if !ops.is_empty() {
                master.pending_replay.insert(*enb, ops);
            }
        }
        if let Some(journal) = master.journal.as_mut() {
            journal.seed_replay(&state);
            journal.compact(&master.rib);
        }
        Ok(master)
    }

    /// Serialized journal of this incarnation, if journaling is on (what
    /// a deployment would keep fsynced; the sim harness carries it across
    /// a simulated crash).
    pub fn journal_bytes(&self) -> Option<Vec<u8>> {
        self.journal.as_ref().map(|j| j.bytes())
    }

    /// Journal compaction count (diagnostics / tests).
    pub fn journal_compactions(&self) -> Option<u64> {
        self.journal.as_ref().map(|j| j.compactions())
    }

    /// Detach all session transports, in session order. Used by crash
    /// harnesses: the links outlive the master process, the sessions do
    /// not.
    pub fn take_transports(&mut self) -> Vec<Box<dyn Transport>> {
        self.sessions.drain(..).map(|s| s.transport).collect()
    }

    /// Attach an agent session (any transport).
    pub fn add_agent(&mut self, transport: Box<dyn Transport>) -> usize {
        self.sessions.push(Session {
            transport,
            enb_id: None,
            last_rx: None,
            down: false,
            replay: Vec::new(),
            needs_resync_nudge: self.recovered,
        });
        self.sessions.len() - 1
    }

    /// Register a northbound application.
    pub fn register_app(&mut self, app: Box<dyn App>) {
        self.apps.register(app);
    }

    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    pub fn accounting(&self) -> CycleAccounting {
        self.accounting
    }

    pub fn conflicts(&self) -> u64 {
        self.guard.conflicts
    }

    pub fn app_names(&self) -> Vec<String> {
        self.apps.names()
    }

    /// Known agents, in session order.
    pub fn connected_agents(&self) -> Vec<EnbId> {
        self.sessions.iter().filter_map(|s| s.enb_id).collect()
    }

    /// Agents whose sessions are currently considered down.
    pub fn downed_agents(&self) -> Vec<EnbId> {
        self.sessions
            .iter()
            .filter(|s| s.down)
            .filter_map(|s| s.enb_id)
            .collect()
    }

    pub fn liveness_stats(&self) -> SessionLivenessStats {
        self.liveness
    }

    /// Messages of one category sent so far on the session towards
    /// `enb`, as counted by the session transport. `None` when no
    /// session has identified itself as `enb` yet. Used by external
    /// conservation checks ("every command the master sent is accounted
    /// for at the agent"), e.g. the chaos-engine oracles.
    pub fn session_tx_messages(&self, enb: EnbId, cat: MessageCategory) -> Option<u64> {
        self.sessions
            .iter()
            .find(|s| s.enb_id == Some(enb))
            .map(|s| s.transport.tx_counters().messages(cat))
    }

    fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Send a message to an agent immediately (management path).
    pub fn send_to(&mut self, enb: EnbId, msg: FlexranMessage) -> Result<u32> {
        let xid = self.next_xid();
        let session = self
            .sessions
            .iter_mut()
            .find(|s| s.enb_id == Some(enb))
            .ok_or_else(|| FlexError::NotFound(format!("no session for {enb}")))?;
        session.transport.send(Header::with_xid(xid), &msg)?;
        Ok(xid)
    }

    fn record_replay(&mut self, enb: EnbId, op: ReplayOp) {
        if let Some(journal) = self.journal.as_mut() {
            journal.record_replay(enb, &op.to_message());
        }
        if let Some(session) = self.sessions.iter_mut().find(|s| s.enb_id == Some(enb)) {
            session.replay.push(op);
        }
    }

    /// Subscribe to statistics from an agent.
    pub fn request_stats(&mut self, enb: EnbId, config: ReportConfig) -> Result<u32> {
        let xid = self.send_to(enb, FlexranMessage::StatsRequest(StatsRequest { config }))?;
        self.record_replay(enb, ReplayOp::Stats(config));
        Ok(xid)
    }

    /// Push a VSF (signing it as the trusted authority would).
    pub fn push_vsf(&mut self, enb: EnbId, mut push: VsfPush, sign: bool) -> Result<u32> {
        if sign {
            // The master holds the signing key in this model.
            sign_push_compat(&mut push);
        }
        let xid = self.send_to(enb, FlexranMessage::VsfPush(push.clone()))?;
        self.record_replay(enb, ReplayOp::Vsf(push));
        Ok(xid)
    }

    /// Send a policy reconfiguration document.
    pub fn reconfigure(&mut self, enb: EnbId, yaml: String) -> Result<u32> {
        let xid = self.send_to(
            enb,
            FlexranMessage::PolicyReconfiguration(flexran_proto::messages::PolicyReconfiguration {
                yaml: yaml.clone(),
            }),
        )?;
        self.record_replay(enb, ReplayOp::Policy(yaml));
        Ok(xid)
    }

    fn liveness_event(enb: EnbId, kind: EventKind, now: Tti) -> NotifiedEvent {
        NotifiedEvent {
            enb,
            notification: EventNotification {
                enb_id: enb,
                kind,
                tti: now.0,
                ..EventNotification::default()
            },
            received: now,
        }
    }

    /// Run one Task Manager cycle at master time `now`.
    pub fn run_cycle(&mut self, now: Tti) -> CycleStats {
        self.now = now;
        // --------------------------- RIB slot ---------------------------
        // Wall-clock here only *measures* the slot (Fig. 8 accounting);
        // it never influences scheduling decisions.
        // lint:allow(wall-clock)
        let rib_start = Instant::now();
        self.rib.open_write_cycle(now);
        let mut events: Vec<NotifiedEvent> = Vec::new();
        let mut rejoined: Vec<usize> = Vec::new();
        for (idx, session) in self.sessions.iter_mut().enumerate() {
            loop {
                match session.transport.try_recv() {
                    Ok(Some((header, msg))) => {
                        session.last_rx = Some(now);
                        if session.down {
                            session.down = false;
                            rejoined.push(idx);
                        }
                        if let FlexranMessage::Heartbeat(h) = &msg {
                            // Session-level probe: mirror it back even
                            // before the agent has introduced itself.
                            let _ = session
                                .transport
                                .send(header, &FlexranMessage::HeartbeatAck(*h));
                        }
                        if let FlexranMessage::Hello(h) = &msg {
                            session.enb_id = Some(h.enb_id);
                            session.needs_resync_nudge = false;
                            // A recovered master owes this agent its
                            // pre-crash delegated state: adopt it into
                            // the session and run the rejoin path, which
                            // also clears the staleness epoch recovery
                            // opened.
                            if let Some(ops) = self.pending_replay.remove(&h.enb_id) {
                                session.replay = ops;
                                if !rejoined.contains(&idx) {
                                    rejoined.push(idx);
                                }
                            }
                        }
                        let Some(enb) = session.enb_id else {
                            // Pre-hello traffic carries no identity; it is
                            // not folded into the RIB. On a recovered
                            // master it still proves an agent is on this
                            // transport, so nudge it (once) to
                            // re-introduce itself and push full state.
                            if session.needs_resync_nudge {
                                session.needs_resync_nudge = false;
                                self.xid = self.xid.wrapping_add(1);
                                let _ = session.transport.send(
                                    Header::with_xid(self.xid),
                                    &FlexranMessage::ResyncRequest(ResyncRequest {
                                        enb_id: EnbId(0),
                                        since_tti: 0,
                                    }),
                                );
                            }
                            continue;
                        };
                        if let Some(ev) = self.updater.apply(&mut self.rib, enb, &msg, now) {
                            events.push(ev);
                        }
                        if let Some(journal) = self.journal.as_mut() {
                            if mutates_rib(&msg) {
                                journal.record_delta(enb, now, &msg);
                            }
                        }
                    }
                    Ok(None) => break,
                    Err(_) => break,
                }
            }
        }
        // Rejoins: mark the subtree fresh again and replay delegated
        // state so the agent converges back to the pre-outage policy.
        for idx in rejoined {
            let Some((enb, replay)) = self
                .sessions
                .get(idx)
                .and_then(|s| s.enb_id.map(|enb| (enb, s.replay.clone())))
            else {
                continue;
            };
            // The master's view of the agent predates the outage: ask for
            // a full state re-sync (fresh ConfigReply + all-flags
            // StatsReply) before replaying delegated state, so both sides
            // converge from a known-good base. After a master crash this
            // is the reconciliation leg of recovery.
            let since_tti = self
                .rib
                .agent(enb)
                .and_then(|a| a.synced_subframe())
                .map(|t| t.0)
                .unwrap_or(0);
            self.updater.agent_rejoined(&mut self.rib, enb);
            self.liveness.ups += 1;
            events.push(Self::liveness_event(enb, EventKind::AgentUp, now));
            let Some(session) = self.sessions.get_mut(idx) else {
                continue;
            };
            self.xid = self.xid.wrapping_add(1);
            let _ = session.transport.send(
                Header::with_xid(self.xid),
                &FlexranMessage::ResyncRequest(ResyncRequest {
                    enb_id: enb,
                    since_tti,
                }),
            );
            for op in replay {
                self.xid = self.xid.wrapping_add(1);
                let header = Header::with_xid(self.xid);
                let _ = session.transport.send(header, &op.to_message());
            }
        }
        // Down detection: sessions silent past the timeout get their RIB
        // subtree marked stale (a timestamped epoch — not deleted) and an
        // AgentDown event.
        if self.config.liveness_timeout > 0 {
            for session in &mut self.sessions {
                let (Some(enb), Some(last_rx)) = (session.enb_id, session.last_rx) else {
                    continue;
                };
                if !session.down && now.0.saturating_sub(last_rx.0) >= self.config.liveness_timeout
                {
                    session.down = true;
                    self.updater.agent_down(&mut self.rib, enb, now);
                    self.liveness.downs += 1;
                    events.push(Self::liveness_event(enb, EventKind::AgentDown, now));
                }
            }
        }
        // Durability point: the write cycle's deltas are already
        // journaled; rewrite the snapshot on the compaction schedule so
        // journal memory stays bounded by RIB size.
        if let Some(journal) = self.journal.as_mut() {
            journal.on_write_cycle(&self.rib);
        }
        // The RIB slot is over: the single writer's window closes, and
        // (under `debug-invariants`) any app-slot mutation now asserts.
        self.rib.close_write_cycle();
        let rib_slot = rib_start.elapsed();

        // --------------------------- Apps slot --------------------------
        // Measurement only, as above. lint:allow(wall-clock)
        let apps_start = Instant::now();
        let mut outbox: Vec<(EnbId, Header, FlexranMessage)> = Vec::new();
        for app in self.apps.iter_mut() {
            let view = RibView::new(now, &self.rib);
            let mut ctl = ControlHandle::new(&mut outbox, &mut self.guard, &mut self.xid);
            for ev in &events {
                app.on_event(ev, &view, &mut ctl);
            }
            app.on_cycle(&view, &mut ctl);
        }
        // Dispatch staged commands.
        for (enb, header, msg) in outbox {
            if let Some(session) = self.sessions.iter_mut().find(|s| s.enb_id == Some(enb)) {
                let _ = session.transport.send(header, &msg);
            }
        }
        // Old scheduling claims can never conflict again.
        self.guard.expire_before(Tti(now.0.saturating_sub(200)));
        let apps_slot = apps_start.elapsed();

        self.accounting.cycles += 1;
        self.accounting.rib_total += rib_slot;
        self.accounting.apps_total += apps_slot;
        CycleStats {
            rib_slot,
            apps_slot,
        }
    }

    /// Real-time mode: run cycles paced at the configured TTI duration
    /// for `duration`, sleeping out each cycle's idle time.
    pub fn run_realtime(&mut self, duration: Duration) {
        // Real-time mode paces cycles by the wall clock by definition;
        // deterministic runs use `run_cycle` under a virtual clock.
        // lint:allow(wall-clock)
        let start = Instant::now();
        let mut tti = self.now;
        while start.elapsed() < duration {
            // Pacing, as above. lint:allow(wall-clock)
            let cycle_start = Instant::now();
            tti += 1;
            self.run_cycle(tti);
            let spent = cycle_start.elapsed();
            if spent < self.config.tti_duration {
                std::thread::sleep(self.config.tti_duration - spent);
            }
        }
    }
}

/// Signing helper re-exported here so the controller crate does not
/// depend on the agent crate (the key/algorithm pair must match
/// `flexran-agent`'s verifier; the shared-constant duplication is the
/// model's stand-in for PKI).
fn sign_push_compat(push: &mut VsfPush) {
    const SIGNING_KEY: u64 = 0x46_4C_45_58_52_41_4E_21;
    let mut h = SIGNING_KEY ^ 0xcbf29ce484222325;
    let mut feed = |data: &[u8]| {
        for b in data {
            h ^= *b as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    };
    feed(push.module.as_bytes());
    feed(&[0]);
    feed(push.vsf.as_bytes());
    feed(&[0]);
    feed(push.name.as_bytes());
    feed(&[0]);
    match &push.artifact {
        flexran_proto::messages::VsfArtifact::Registry { key } => {
            feed(&[0]);
            feed(key.as_bytes());
        }
        flexran_proto::messages::VsfArtifact::Dsl { source } => {
            feed(&[1]);
            feed(source.as_bytes());
        }
    }
    push.signature = h.to_be_bytes().to_vec();
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_proto::messages::Hello;
    use flexran_proto::transport::channel_pair;

    #[test]
    fn sessions_learn_identity_from_hello() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(7),
                    n_cells: 1,
                    capabilities: vec![],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        assert_eq!(master.connected_agents(), vec![EnbId(7)]);
        assert!(master.rib().agent(EnbId(7)).is_some());
        // Messages to unknown agents error.
        assert!(master
            .send_to(EnbId(9), FlexranMessage::EchoRequest(Default::default()))
            .is_err());
        // Messages to known agents arrive.
        master
            .send_to(EnbId(7), FlexranMessage::EchoRequest(Default::default()))
            .unwrap();
        assert!(agent_side.try_recv().unwrap().is_some());
    }

    #[test]
    fn cycle_accounting_accumulates() {
        let mut master = MasterController::new(TaskManagerConfig::default());
        for t in 0..10 {
            master.run_cycle(Tti(t));
        }
        let acc = master.accounting();
        assert_eq!(acc.cycles, 10);
        assert!(acc.mean_idle(Duration::from_millis(1)) > Duration::from_micros(500));
    }

    struct CountingApp {
        cycles: std::sync::Arc<std::sync::atomic::AtomicU64>,
        events: std::sync::Arc<std::sync::atomic::AtomicU64>,
    }

    impl App for CountingApp {
        fn name(&self) -> &str {
            "counting"
        }
        fn on_cycle(&mut self, _rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {
            self.cycles
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
        fn on_event(
            &mut self,
            _ev: &NotifiedEvent,
            _rib: &RibView<'_>,
            _ctl: &mut ControlHandle<'_>,
        ) {
            self.events
                .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        }
    }

    #[test]
    fn apps_get_cycles_and_events() {
        use std::sync::atomic::{AtomicU64, Ordering};
        use std::sync::Arc;
        let cycles = Arc::new(AtomicU64::new(0));
        let events = Arc::new(AtomicU64::new(0));
        let mut master = MasterController::new(TaskManagerConfig::default());
        master.register_app(Box::new(CountingApp {
            cycles: cycles.clone(),
            events: events.clone(),
        }));
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(1),
                    n_cells: 1,
                    capabilities: vec![],
                }),
            )
            .unwrap();
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::EventNotification(flexran_proto::messages::EventNotification {
                    enb_id: EnbId(1),
                    kind: flexran_proto::messages::events::EventKind::SchedulingRequest,
                    ..Default::default()
                }),
            )
            .unwrap();
        for t in 0..5 {
            master.run_cycle(Tti(t));
        }
        assert_eq!(cycles.load(Ordering::Relaxed), 5);
        assert_eq!(events.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn session_timeout_marks_stale_and_rejoin_replays() {
        let mut master = MasterController::new(TaskManagerConfig {
            liveness_timeout: 20,
            ..TaskManagerConfig::default()
        });
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(3),
                    n_cells: 1,
                    capabilities: vec![],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        // Delegate state that must survive the outage.
        master
            .request_stats(
                EnbId(3),
                flexran_proto::messages::stats::ReportConfig::default(),
            )
            .unwrap();
        master
            .reconfigure(
                EnbId(3),
                "mac:\n  dl_ue_scheduler:\n    behavior: remote-stub\n".into(),
            )
            .unwrap();
        while agent_side.try_recv().unwrap().is_some() {}
        // Silence past the timeout → down edge, stale subtree.
        for t in 1..=25 {
            master.run_cycle(Tti(t));
        }
        assert_eq!(master.downed_agents(), vec![EnbId(3)]);
        assert_eq!(master.liveness_stats().downs, 1);
        let agent = master.rib().agent(EnbId(3)).unwrap();
        assert!(agent.is_stale());
        assert_eq!(agent.stale_since, Some(Tti(20)));
        // A heartbeat from the agent → up edge, ack, and state replay.
        agent_side
            .send(
                Header::with_xid(1),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat { seq: 4, tti: 26 }),
            )
            .unwrap();
        master.run_cycle(Tti(26));
        assert!(master.downed_agents().is_empty());
        assert_eq!(master.liveness_stats().ups, 1);
        assert!(!master.rib().agent(EnbId(3)).unwrap().is_stale());
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(
            kinds,
            vec![
                "heartbeat-ack",
                "resync-request",
                "stats-request",
                "policy-reconfiguration"
            ],
            "ack, then the re-sync solicitation, then the delegated state in order"
        );
    }

    #[test]
    fn master_recovers_rib_and_replays_delegated_state_from_journal() {
        let config = TaskManagerConfig {
            liveness_timeout: 20,
            journal_snapshot_every: 4,
            ..TaskManagerConfig::default()
        };
        let mut master = MasterController::new(config);
        let (mut agent_side, master_side) = channel_pair();
        master.add_agent(Box::new(master_side));
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec!["dl_scheduling".into()],
                }),
            )
            .unwrap();
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::StatsReply(flexran_proto::messages::StatsReply {
                    enb_id: EnbId(5),
                    tti: 1,
                    cells: vec![],
                    ues: vec![flexran_proto::messages::UeReport {
                        rnti: 0x100,
                        cell: 0,
                        connected: true,
                        wideband_cqi: 13,
                        ..Default::default()
                    }],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(0));
        master
            .request_stats(
                EnbId(5),
                flexran_proto::messages::stats::ReportConfig::default(),
            )
            .unwrap();
        // Enough cycles to force at least one snapshot compaction, so the
        // recovery path exercises snapshot + deltas, not deltas alone.
        for t in 1..=6 {
            master.run_cycle(Tti(t));
        }
        assert!(master.journal_compactions().unwrap() >= 1);
        let pre_crash_rib = master.rib().clone();
        let journal = master.journal_bytes().unwrap();
        let transports = master.take_transports();
        drop(master); // the crash

        let mut master = MasterController::recover(config, &journal, Tti(50)).unwrap();
        for t in transports {
            master.add_agent(t);
        }
        // The forest is back, but stale: it is a pre-crash epoch.
        assert_eq!(master.rib().n_ues(), 1);
        let agent = master.rib().agent(EnbId(5)).unwrap();
        assert!(agent.is_stale());
        assert_eq!(agent.stale_since, Some(Tti(50)));
        assert_eq!(
            master
                .rib()
                .ue(
                    EnbId(5),
                    flexran_types::ids::CellId(0),
                    flexran_types::ids::Rnti(0x100)
                )
                .unwrap()
                .report
                .wideband_cqi,
            13
        );
        {
            let mut recovered = master.rib().clone();
            recovered.agent_mut(EnbId(5)).mark_fresh();
            assert_eq!(
                recovered, pre_crash_rib,
                "journal round-trip must reproduce the RIB exactly (modulo the recovery staleness epoch)"
            );
        }
        while agent_side.try_recv().unwrap().is_some() {}
        // Pre-hello traffic on a recovered master draws the resync nudge.
        agent_side
            .send(
                Header::with_xid(1),
                &FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat { seq: 1, tti: 51 }),
            )
            .unwrap();
        master.run_cycle(Tti(51));
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(kinds, vec!["heartbeat-ack", "resync-request"]);
        // The agent re-introduces itself: staleness clears and the
        // delegated state recovered from the journal is replayed.
        agent_side
            .send(
                Header::default(),
                &FlexranMessage::Hello(Hello {
                    enb_id: EnbId(5),
                    n_cells: 1,
                    capabilities: vec!["dl_scheduling".into()],
                }),
            )
            .unwrap();
        master.run_cycle(Tti(52));
        assert!(!master.rib().agent(EnbId(5)).unwrap().is_stale());
        assert_eq!(master.liveness_stats().ups, 1);
        let mut kinds = Vec::new();
        while let Ok(Some((_, m))) = agent_side.try_recv() {
            kinds.push(m.kind().to_string());
        }
        assert_eq!(
            kinds,
            vec!["resync-request", "stats-request"],
            "rejoin re-sync plus the journal-recovered subscription"
        );
    }

    #[test]
    fn recover_rejects_corrupt_journals() {
        let config = TaskManagerConfig {
            journal_snapshot_every: 1,
            ..TaskManagerConfig::default()
        };
        assert!(MasterController::recover(config, b"not a journal", Tti(0)).is_err());
        assert!(MasterController::recover(config, &[], Tti(0)).is_err());
    }

    #[test]
    fn signing_matches_agent_verifier() {
        let mut push = VsfPush {
            module: "mac".into(),
            vsf: "dl_ue_scheduler".into(),
            name: "x".into(),
            artifact: flexran_proto::messages::VsfArtifact::Registry {
                key: "round-robin".into(),
            },
            signature: vec![],
        };
        sign_push_compat(&mut push);
        flexran_agent::vsf::verify_push(&push).expect("controller signature must verify");
    }
}
