#![forbid(unsafe_code)]
//! # flexran-controller
//!
//! The FlexRAN master controller (paper §4.3.3): the brain of the FlexRAN
//! control plane.
//!
//! * [`rib`] — the RAN Information Base: an in-memory forest (agents →
//!   cells → UEs) of raw reported state.
//! * [`updater`] — the single-writer RIB Updater plus the event funnel
//!   for the Event Notification Service.
//! * [`northbound`] — the application API: [`northbound::App`] with its
//!   capability-split context ([`northbound::RibView`] to read,
//!   [`northbound::ControlHandle`] to stage commands), the Registry
//!   Service, and the conflict-resolution guard (§7.3 extension).
//! * [`master`] — agent sessions with heartbeat/liveness tracking and
//!   delegated-state replay, the TTI-cycled Task Manager with per-slot
//!   wall-clock accounting (Fig. 8's instrumentation), and real-time
//!   pacing for TCP deployments.
//! * [`journal`] — RIB durability: a snapshot + delta journal written at
//!   each write cycle (one segment per shard), and the recovery path
//!   that lets a restarted master rebuild the RIB and reconcile via
//!   agent re-sync.
//! * [`shard`] — the partitioned control plane: per-agent (groupable)
//!   RIB shards, each with its own single-writer updater and journal
//!   segment, plus the typed cross-shard mailbox.
//! * [`config`] — versioned fleet configuration: the signed bundle
//!   store and the KPI-gated canary rollout state machine with
//!   automatic rollback (DESIGN.md §11).

pub mod config;
pub mod journal;
pub mod master;
pub mod northbound;
pub mod rib;
pub mod shard;
pub mod updater;

pub use config::{
    AgentKpi, BundleAck, ConfigBundle, FleetKpi, RolloutAction, RolloutConfig, RolloutController,
    RolloutEvent, RolloutEventKind, RolloutPhase, RolloutStatus,
};
pub use journal::{RecoveredState, RibJournal};
pub use master::{
    CycleAccounting, CycleStats, MasterController, SessionLivenessStats, TaskManagerConfig,
};
pub use northbound::{
    App, AppRegistry, ConflictGuard, ControlHandle, Northbound, Priority, RibView,
};
pub use rib::{AgentNode, CellNode, Rib, UeNode};
pub use shard::{merged_rib, CrossShardMsg, RibShard, ShardSpec};
pub use updater::{NotifiedEvent, RibUpdater};
