//! Per-agent RIB shards: the partitioned control plane.
//!
//! The paper's master is logically centralized but nothing in its cycle
//! requires one serial loop: every agent message mutates only that
//! agent's RIB subtree, and the single-writer discipline (Fig. 5) is a
//! *per-subtree* property. A [`RibShard`] is the unit of that
//! partitioning — it owns a disjoint set of agents and, for them, the
//! complete vertical slice of master state:
//!
//! * a private [`Rib`] forest holding only the owned agents' subtrees,
//! * its own single-writer [`RibUpdater`] (one writer **per shard** —
//!   the R1 lint's discipline, now multiplied),
//! * its own [`RibJournal`] segment (crash recovery replays segments
//!   independently; the container format is `journal::encode_segments`),
//! * the agent sessions themselves, so a shard's RIB slot touches no
//!   state outside the shard and can run on a worker thread.
//!
//! [`ShardSpec`] picks the partitioning: `Auto` (one shard — the classic
//! serial master, the default), `Fixed(n)` (agents hashed over `n`
//! shards by id), or `PerAgent` (a shard per agent, allocated at first
//! `Hello`).
//!
//! Cross-shard interactions never touch another shard's RIB. They are
//! explicit [`CrossShardMsg`] values posted to the target shard's
//! mailbox by the master at the serial barrier after the shard fan-out:
//! staged northbound commands are routed to the owning shard's sessions,
//! and a handover whose source and target agents live in different
//! shards additionally posts a [`CrossShardMsg::HandoverNotice`] to the
//! target's shard (coordination bookkeeping — deliberately inert so a
//! sharded run stays bit-identical to the 1-shard baseline).
//!
//! Determinism: each shard tags the events it raises with the session's
//! *global* index and a phase number; the master stable-sorts the merged
//! stream by `(phase, global index)`, which reproduces exactly the event
//! order of the old serial loop regardless of shard count.

use std::collections::VecDeque;

use flexran_proto::messages::delegation::VsfPush;
use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::stats::{ReportConfig, StatsRequest};
use flexran_proto::messages::{EventNotification, FlexranMessage, Header, ResyncRequest};
use flexran_proto::transport::Transport;
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;

use crate::config::BundleAck;
use crate::journal::{mutates_rib, RibJournal};
use crate::master::{SessionLivenessStats, TaskManagerConfig};
use crate::rib::Rib;
use crate::updater::{NotifiedEvent, RibUpdater};

/// How the master partitions agents over RIB shards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ShardSpec {
    /// One shard (the classic serial master). The default, so existing
    /// configurations and tests are untouched.
    #[default]
    Auto,
    /// `n` shards; agent `e` is owned by shard `e mod n`. The mapping
    /// depends only on the agent id, so it is stable across restarts
    /// and arrival orders.
    Fixed(usize),
    /// One shard per agent, allocated when the agent's first `Hello`
    /// arrives (allocation order is the deterministic hello order).
    PerAgent,
}

impl ShardSpec {
    /// Shards to pre-allocate at master construction.
    pub fn initial_shards(self) -> usize {
        match self {
            ShardSpec::Auto => 1,
            ShardSpec::Fixed(n) => n.max(1),
            ShardSpec::PerAgent => 0,
        }
    }
}

/// Delegated state the master replays to a rejoining agent, in original
/// order (paper §4.3.2: the master, not the agent, owns policy intent).
#[derive(Debug, Clone)]
pub(crate) enum ReplayOp {
    Stats(ReportConfig),
    Vsf(VsfPush),
    Policy(String),
}

impl ReplayOp {
    pub(crate) fn to_message(&self) -> FlexranMessage {
        match self {
            ReplayOp::Stats(config) => {
                FlexranMessage::StatsRequest(StatsRequest { config: *config })
            }
            ReplayOp::Vsf(push) => FlexranMessage::VsfPush(push.clone()),
            ReplayOp::Policy(yaml) => FlexranMessage::PolicyReconfiguration(
                flexran_proto::messages::PolicyReconfiguration { yaml: yaml.clone() },
            ),
        }
    }

    /// Inverse of [`ReplayOp::to_message`] — journal recovery turns the
    /// persisted replay section back into ops. Non-delegation kinds in
    /// the section are ignored (a corrupt-but-decodable journal must not
    /// inject arbitrary commands).
    pub(crate) fn from_message(msg: &FlexranMessage) -> Option<ReplayOp> {
        match msg {
            FlexranMessage::StatsRequest(r) => Some(ReplayOp::Stats(r.config)),
            FlexranMessage::VsfPush(p) => Some(ReplayOp::Vsf(p.clone())),
            FlexranMessage::PolicyReconfiguration(p) => Some(ReplayOp::Policy(p.yaml.clone())),
            _ => None,
        }
    }
}

/// One agent control session (transport + liveness + delegated state).
pub(crate) struct Session {
    pub(crate) transport: Box<dyn Transport>,
    pub(crate) enb_id: Option<EnbId>,
    /// Master time of the last message from this agent (None = silent so
    /// far; the timeout clock starts at the first message).
    pub(crate) last_rx: Option<Tti>,
    /// Session currently considered dead.
    pub(crate) down: bool,
    /// Delegated-state log replayed on rejoin.
    pub(crate) replay: Vec<ReplayOp>,
    /// Recovered-master sessions don't know which agent is on the other
    /// end until a `Hello` arrives; pre-hello traffic triggers a
    /// `ResyncRequest` nudge so agents that never noticed the outage
    /// (shorter than their degraded threshold) still re-introduce
    /// themselves and push full state.
    pub(crate) needs_resync_nudge: bool,
    /// When the last nudge went out. The nudge re-arms every
    /// [`RESYNC_NUDGE_PERIOD`] TTIs while the session stays pre-hello:
    /// a nudge — or the `Hello` it provokes — lost to a faulty link is
    /// retried instead of stranding the agent in a stale epoch forever.
    pub(crate) nudged_at: Option<Tti>,
    /// Index in global attach order — shard-count-invariant, the event
    /// merge key and the order of `connected_agents`/`take_transports`.
    pub(crate) global_idx: u32,
    /// Per-session transaction ids, so the xid stream on one control
    /// link does not depend on which other agents share its shard.
    pub(crate) xid: u32,
    /// Messages handed over by the master's pre-hello drain (the `Hello`
    /// that routed this session to its shard rides here); consumed ahead
    /// of the transport.
    pub(crate) carryover: VecDeque<(Header, FlexranMessage)>,
    /// Run the rejoin path (fresh-mark + delegated-state replay) on the
    /// next RIB slot — set when a recovered master adopts pending replay
    /// state at the session's `Hello`.
    pub(crate) rejoin_pending: bool,
    /// The session re-introduced itself as an agent this shard does not
    /// own; the master moves it to the owning shard at the barrier.
    pub(crate) rehome_to: Option<EnbId>,
    /// Config-bundle signature the agent last advertised (via `Hello`,
    /// heartbeat, or a successful bundle ack; 0 = none). The rollout
    /// state machine reads this to detect convergence and drift.
    pub(crate) applied_config: u64,
}

impl Session {
    pub(crate) fn new(
        transport: Box<dyn Transport>,
        global_idx: u32,
        needs_resync_nudge: bool,
    ) -> Self {
        Session {
            transport,
            enb_id: None,
            last_rx: None,
            down: false,
            replay: Vec::new(),
            needs_resync_nudge,
            nudged_at: None,
            global_idx,
            xid: 0,
            carryover: VecDeque::new(),
            rejoin_pending: false,
            rehome_to: None,
            applied_config: 0,
        }
    }

    pub(crate) fn next_xid(&mut self) -> u32 {
        self.xid = self.xid.wrapping_add(1);
        self.xid
    }

    /// Whether pre-hello traffic at `now` should draw a resync nudge,
    /// recording the send. Paced by [`RESYNC_NUDGE_PERIOD`] so the
    /// master retries (rather than spams) when a nudge or the answering
    /// `Hello` is lost on a faulty link.
    pub(crate) fn take_nudge(&mut self, now: Tti) -> bool {
        if !self.needs_resync_nudge {
            return false;
        }
        if self
            .nudged_at
            .is_some_and(|at| now.0.saturating_sub(at.0) < RESYNC_NUDGE_PERIOD)
        {
            return false;
        }
        self.nudged_at = Some(now);
        true
    }
}

/// Re-arm period (TTIs) for the pre-hello resync nudge. Longer than the
/// agent heartbeat period (so one round trip can complete), far shorter
/// than any staleness an operator would notice.
pub(crate) const RESYNC_NUDGE_PERIOD: u64 = 25;

/// A typed cross-shard message. The only way state crosses a shard
/// boundary: posted to the target shard's mailbox by the master and
/// drained serially (shard-index order) at the barrier after the shard
/// fan-out, so multi-shard runs stay bit-identical to 1-shard runs.
#[derive(Debug)]
pub enum CrossShardMsg {
    /// A staged northbound command routed to the shard owning `enb`.
    Command {
        enb: EnbId,
        header: Header,
        msg: FlexranMessage,
    },
    /// Coordination heads-up to the shard owning a handover target whose
    /// source agent lives in a different shard. Bookkeeping only — it
    /// must stay digest-neutral (1-shard runs never produce one).
    HandoverNotice { from: EnbId, to: EnbId },
}

/// Event-merge phases, in the order the old serial loop raised them.
pub(crate) const PHASE_DRAIN: u8 = 0;
pub(crate) const PHASE_REJOIN: u8 = 1;
pub(crate) const PHASE_DOWN: u8 = 2;

/// An event raised by a shard's RIB slot, tagged for the deterministic
/// agent-index-ordered merge.
pub(crate) struct TaggedEvent {
    pub(crate) phase: u8,
    /// The raising session's global attach index.
    pub(crate) order: u32,
    pub(crate) event: NotifiedEvent,
}

pub(crate) fn liveness_event(enb: EnbId, kind: EventKind, now: Tti) -> NotifiedEvent {
    NotifiedEvent {
        enb,
        notification: EventNotification {
            enb_id: enb,
            kind,
            tti: now.0,
            ..EventNotification::default()
        },
        received: now,
    }
}

/// Whether shard `index` of `n_shards` owns agent `enb` under `spec`.
/// `owned_hint` is the agent a `PerAgent` shard was allocated for.
fn owns_enb(
    spec: ShardSpec,
    index: usize,
    n_shards: usize,
    owned_hint: Option<EnbId>,
    enb: EnbId,
) -> bool {
    match spec {
        ShardSpec::Auto => true,
        ShardSpec::Fixed(_) => enb.0 as usize % n_shards.max(1) == index,
        ShardSpec::PerAgent => owned_hint == Some(enb),
    }
}

/// One shard of the partitioned master: a disjoint set of agents with
/// their RIB subtrees, single-writer updater, journal segment, and
/// sessions. `run_rib_slot` touches nothing outside the shard, so the
/// master fans shards out on the scoped worker pool.
pub struct RibShard {
    index: usize,
    spec: ShardSpec,
    n_shards: usize,
    owned_hint: Option<EnbId>,
    liveness_timeout: u64,
    pub(crate) rib: Rib,
    pub(crate) updater: RibUpdater,
    pub(crate) journal: Option<RibJournal>,
    pub(crate) sessions: Vec<Session>,
    pub(crate) liveness: SessionLivenessStats,
    /// Events raised this cycle, drained by the master's merge.
    pub(crate) events: Vec<TaggedEvent>,
    /// Incoming cross-shard messages (drained at the barrier).
    pub(crate) mailbox: Vec<CrossShardMsg>,
    /// Config-bundle acks received this cycle, drained by the master's
    /// rollout step at the barrier.
    pub(crate) config_acks: Vec<BundleAck>,
    coordination_notices: u64,
}

impl RibShard {
    pub(crate) fn new(
        index: usize,
        n_shards: usize,
        owned_hint: Option<EnbId>,
        config: &TaskManagerConfig,
    ) -> Self {
        RibShard {
            index,
            spec: config.shards,
            n_shards,
            owned_hint,
            liveness_timeout: config.liveness_timeout,
            rib: Rib::new(),
            updater: RibUpdater::new(),
            journal: (config.journal_snapshot_every > 0)
                .then(|| RibJournal::new(config.journal_snapshot_every)),
            sessions: Vec::new(),
            liveness: SessionLivenessStats::default(),
            events: Vec::new(),
            mailbox: Vec::new(),
            config_acks: Vec::new(),
            coordination_notices: 0,
        }
    }

    /// This shard's RIB forest (only the owned agents' subtrees).
    pub fn rib(&self) -> &Rib {
        &self.rib
    }

    pub fn index(&self) -> usize {
        self.index
    }

    /// Cross-shard handover notices observed at the barrier.
    pub fn coordination_notices(&self) -> u64 {
        self.coordination_notices
    }

    /// Run this shard's RIB slot for cycle `now`: drain the owned
    /// sessions, fold messages through the shard's single writer,
    /// journal deltas, process rejoins and liveness timeouts. Exactly
    /// the old serial master loop, restricted to the shard's agents.
    // lint:no-alloc — per-TTI shard slot; steady state must not touch the heap
    pub fn run_rib_slot(&mut self, now: Tti) {
        let (spec, index, n_shards, owned_hint) =
            (self.spec, self.index, self.n_shards, self.owned_hint);
        self.rib.open_write_cycle(now);
        // Pushes happen only on the cold rejoin edge after an outage.
        // lint:allow(hot-alloc) Vec::new never allocates
        let mut rejoined: Vec<usize> = Vec::new();
        for (idx, session) in self.sessions.iter_mut().enumerate() {
            if session.rejoin_pending {
                session.rejoin_pending = false;
                rejoined.push(idx);
            }
            if session.rehome_to.is_some() {
                // Parked for the master to move at the barrier.
                continue;
            }
            loop {
                let next = match session.carryover.pop_front() {
                    Some(m) => Some(m),
                    // lint:allow(alloc-reach) decode materializes owned messages — arrival-driven
                    None => match session.transport.try_recv() {
                        Ok(Some(m)) => Some(m),
                        Ok(None) | Err(_) => None,
                    },
                };
                let Some((header, msg)) = next else { break };
                session.last_rx = Some(now);
                if session.down {
                    session.down = false;
                    rejoined.push(idx);
                }
                if let FlexranMessage::Heartbeat(h) = &msg {
                    // Session-level probe: mirror it back even before the
                    // agent has introduced itself. The probe doubles as
                    // the drift signal: it carries the signature of the
                    // config bundle the agent is actually running.
                    session.applied_config = h.applied_config;
                    let _ = session
                        .transport
                        // lint:allow(alloc-reach) wire frame growth is pooled; ack is arrival-driven
                        .send(header, &FlexranMessage::HeartbeatAck(*h));
                }
                if let FlexranMessage::ConfigBundleAck(a) = &msg {
                    if a.ok {
                        session.applied_config = a.signature;
                    }
                    // lint:allow(alloc-reach) rollout ack — arrives only while a push is in flight
                    self.config_acks.push(BundleAck {
                        enb: a.enb_id,
                        version: a.version,
                        signature: a.signature,
                        ok: a.ok,
                    });
                }
                if let FlexranMessage::Hello(h) = &msg {
                    if !owns_enb(spec, index, n_shards, owned_hint, h.enb_id) {
                        // The session renamed itself to an agent another
                        // shard owns (an agent restart reusing the link
                        // with a new identity): park the hello and let
                        // the master re-home the session — this shard
                        // must never write a foreign subtree.
                        let rehome = h.enb_id;
                        session.carryover.push_front((header, msg));
                        session.rehome_to = Some(rehome);
                        break;
                    }
                    session.enb_id = Some(h.enb_id);
                    session.needs_resync_nudge = false;
                    session.applied_config = h.applied_config;
                }
                let Some(enb) = session.enb_id else {
                    // Pre-hello traffic carries no identity; it is not
                    // folded into the RIB. On a recovered master it still
                    // proves an agent is on this transport, so nudge it
                    // (paced, retried) to re-introduce itself and push
                    // full state.
                    if session.take_nudge(now) {
                        let xid = session.next_xid();
                        // lint:allow(alloc-reach) recovery nudge — paced, pre-hello only
                        let _ = session.transport.send(
                            Header::with_xid(xid),
                            &FlexranMessage::ResyncRequest(ResyncRequest {
                                enb_id: EnbId(0),
                                since_tti: 0,
                            }),
                        );
                    }
                    continue;
                };
                if let Some(ev) = self.updater.apply(&mut self.rib, enb, &msg, now) {
                    self.events.push(TaggedEvent {
                        phase: PHASE_DRAIN,
                        order: session.global_idx,
                        event: ev,
                    });
                }
                if let Some(journal) = self.journal.as_mut() {
                    if mutates_rib(&msg) {
                        journal.record_delta(enb, now, &msg);
                    }
                }
            }
        }
        // Rejoins: mark the subtree fresh again and replay delegated
        // state so the agent converges back to the pre-outage policy.
        for idx in rejoined {
            let Some((enb, order, replay)) = self
                .sessions
                .get(idx)
                // lint:allow(hot-alloc) rejoin-only (cold): replays delegated state
                .and_then(|s| s.enb_id.map(|enb| (enb, s.global_idx, s.replay.clone())))
            else {
                continue;
            };
            // The shard's view of the agent predates the outage: ask for
            // a full state re-sync (fresh ConfigReply + all-flags
            // StatsReply) before replaying delegated state, so both sides
            // converge from a known-good base. After a master crash this
            // is the reconciliation leg of recovery.
            let since_tti = self
                .rib
                .agent(enb)
                .and_then(|a| a.synced_subframe())
                .map(|t| t.0)
                .unwrap_or(0);
            self.updater.agent_rejoined(&mut self.rib, enb);
            self.liveness.ups += 1;
            self.events.push(TaggedEvent {
                phase: PHASE_REJOIN,
                order,
                event: liveness_event(enb, EventKind::AgentUp, now),
            });
            let Some(session) = self.sessions.get_mut(idx) else {
                continue;
            };
            let xid = session.next_xid();
            // lint:allow(alloc-reach) rejoin-only (cold): resync request after an outage
            let _ = session.transport.send(
                Header::with_xid(xid),
                &FlexranMessage::ResyncRequest(ResyncRequest {
                    enb_id: enb,
                    since_tti,
                }),
            );
            for op in replay {
                let xid = session.next_xid();
                let _ = session
                    .transport
                    // lint:allow(alloc-reach) rejoin-only (cold): replays delegated state
                    .send(Header::with_xid(xid), &op.to_message());
            }
        }
        // Down detection: sessions silent past the timeout get their RIB
        // subtree marked stale (a timestamped epoch — not deleted) and an
        // AgentDown event.
        if self.liveness_timeout > 0 {
            for session in &mut self.sessions {
                let (Some(enb), Some(last_rx)) = (session.enb_id, session.last_rx) else {
                    continue;
                };
                if !session.down && now.0.saturating_sub(last_rx.0) >= self.liveness_timeout {
                    session.down = true;
                    self.updater.agent_down(&mut self.rib, enb, now);
                    self.liveness.downs += 1;
                    self.events.push(TaggedEvent {
                        phase: PHASE_DOWN,
                        order: session.global_idx,
                        event: liveness_event(enb, EventKind::AgentDown, now),
                    });
                }
            }
        }
        // Durability point: the write cycle's deltas are already
        // journaled; rewrite the snapshot on the compaction schedule so
        // journal memory stays bounded by shard RIB size.
        if let Some(journal) = self.journal.as_mut() {
            journal.on_write_cycle(&self.rib);
        }
        // The RIB slot is over: this shard's single writer's window
        // closes, and (under `debug-invariants`) any app-slot mutation
        // now asserts.
        self.rib.close_write_cycle();
    }

    /// Drain the cross-shard mailbox at the barrier: dispatch routed
    /// commands on the owned sessions, record coordination notices.
    /// Called serially by the master in shard-index order.
    pub(crate) fn drain_mailbox(&mut self) {
        let mut mailbox = std::mem::take(&mut self.mailbox);
        for entry in mailbox.drain(..) {
            match entry {
                CrossShardMsg::Command { enb, header, msg } => {
                    if let Some(session) = self.sessions.iter_mut().find(|s| s.enb_id == Some(enb))
                    {
                        // lint:allow(alloc-reach) cross-shard command forwarding — command-driven
                        let _ = session.transport.send(header, &msg);
                    }
                }
                CrossShardMsg::HandoverNotice { .. } => {
                    self.coordination_notices += 1;
                }
            }
        }
        // Hand the (now empty) buffer back so the mailbox does not
        // reallocate every cycle.
        self.mailbox = mailbox;
    }
}

/// Clone-merge the shard forests into one RIB (shard-transparent full
/// snapshot: recovery golden tests, debug digests, diagnostics). The
/// result is a fresh, never-cycled RIB, so its `Debug` form and write
/// state are identical for every shard count.
pub fn merged_rib(shards: &[RibShard]) -> Rib {
    let mut rib = Rib::new();
    for shard in shards {
        for agent in shard.rib.agents() {
            rib.adopt_agent(agent.clone());
        }
    }
    rib
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_defaults_to_one_shard() {
        assert_eq!(ShardSpec::default(), ShardSpec::Auto);
        assert_eq!(ShardSpec::Auto.initial_shards(), 1);
        assert_eq!(ShardSpec::Fixed(4).initial_shards(), 4);
        assert_eq!(ShardSpec::Fixed(0).initial_shards(), 1);
        assert_eq!(ShardSpec::PerAgent.initial_shards(), 0);
    }

    #[test]
    fn fixed_ownership_is_id_stable() {
        // enb mod n, independent of arrival order.
        assert!(owns_enb(ShardSpec::Fixed(2), 1, 2, None, EnbId(1)));
        assert!(owns_enb(ShardSpec::Fixed(2), 0, 2, None, EnbId(2)));
        assert!(owns_enb(ShardSpec::Fixed(2), 1, 2, None, EnbId(3)));
        assert!(!owns_enb(ShardSpec::Fixed(2), 0, 2, None, EnbId(3)));
        // Auto owns everything; PerAgent owns exactly its hint.
        assert!(owns_enb(ShardSpec::Auto, 0, 1, None, EnbId(9)));
        assert!(owns_enb(
            ShardSpec::PerAgent,
            3,
            4,
            Some(EnbId(9)),
            EnbId(9)
        ));
        assert!(!owns_enb(
            ShardSpec::PerAgent,
            3,
            4,
            Some(EnbId(9)),
            EnbId(8)
        ));
    }

    #[test]
    fn merged_rib_is_fresh_and_complete() {
        let config = TaskManagerConfig::default();
        let mut a = RibShard::new(0, 2, None, &config);
        let mut b = RibShard::new(1, 2, None, &config);
        a.rib.agent_mut(EnbId(2)).connected_at = Tti(5);
        b.rib.agent_mut(EnbId(1)).connected_at = Tti(3);
        let merged = merged_rib(&[a, b]);
        assert_eq!(merged.n_agents(), 2);
        assert_eq!(merged.agent(EnbId(1)).unwrap().connected_at, Tti(3));
        assert_eq!(merged.agent(EnbId(2)).unwrap().connected_at, Tti(5));
        // Fresh RIB: writable (merge never opened a write cycle).
        let mut merged = merged;
        merged.agent_mut(EnbId(7));
    }
}
