//! RIB durability: snapshot + delta journal for master crash-recovery.
//!
//! The paper's master is a single point of failure for the *knowledge*
//! plane: agents survive an outage under local control (PR 1), but a
//! restarted master used to come back with an empty RIB and no memory of
//! the delegated state (report subscriptions, pushed VSFs, policies) it
//! owed each agent. The journal closes that gap.
//!
//! ## Format
//!
//! The journal is a byte log (held in memory here; a file in a real
//! deployment — the format is already position-independent and
//! self-delimiting). Layout:
//!
//! ```text
//! magic "FXJ1"
//! u32 BE  snapshot section length   | synthesized full-RIB records
//! u32 BE  replay section length     | delegated-state records
//! ...     delta records to EOF      | raw agent messages since snapshot
//! ```
//!
//! Every record is `tag:u8  enb:u32 BE  tti:u64 BE  len:u32 BE  payload`,
//! where the payload is an encoded [`FlexranMessage`] envelope. Reusing
//! the wire codec keeps the journal format in lock-step with the protocol
//! (one golden format, one fuzz corpus) and makes recovery literally a
//! replay: every record funnels through [`RibUpdater::apply`], the same
//! single writer that built the RIB the first time.
//!
//! ## Snapshot synthesis
//!
//! Rather than inventing a second serialization of the RIB forest, the
//! snapshot *is a message sequence* that reconstructs it exactly: per
//! agent a `Hello` (identity, capabilities, connect time), per cell a
//! `ConfigReply` and a `StatsReply` at the cell's recorded update time,
//! per UE a `UeAttached` event (tag, connectivity) followed by a
//! `StatsReply` carrying the raw report, and a `SubframeTrigger` for the
//! last sync pair. Compaction (every `snapshot_every` write cycles)
//! rewrites the snapshot from the live RIB and clears the deltas, so
//! journal memory is bounded by RIB size + one compaction window.
//!
//! ## Recovery
//!
//! [`MasterController::recover`](crate::master::MasterController::recover)
//! replays the snapshot and deltas through the updater, marks every
//! recovered agent stale (the data is a pre-crash epoch until the agent
//! re-syncs), and holds the replay section as pending delegated state to
//! re-send when each agent's `Hello` arrives.

use std::collections::BTreeMap;

use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::stats::StatsReply;
use flexran_proto::messages::{
    ConfigReply, EventNotification, FlexranMessage, Header, Hello, SubframeTrigger,
};
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

use crate::rib::Rib;

const MAGIC: &[u8; 4] = b"FXJ1";

/// Record tags.
const TAG_RIB: u8 = 1;
const TAG_REPLAY: u8 = 2;
/// Fleet-rollout state record. Unlike the other two kinds, the payload is
/// *not* a wire envelope but the rollout controller's own codec (see
/// [`crate::config`]): rollout state is master intent — bundle store,
/// history, state-machine position — and has no agent-message equivalent.
/// Rollout records ride in the replay section, so they survive compaction
/// exactly like delegated state does.
const TAG_ROLLOUT: u8 = 3;

/// Cap on a single journal record payload — same bound as a wire frame,
/// for the same reason: anything larger is corruption, not data.
const MAX_RECORD_BYTES: usize = flexran_proto::frame::MAX_FRAME_BYTES;

/// The snapshot + delta journal.
#[derive(Debug, Clone)]
pub struct RibJournal {
    /// Write cycles between snapshot rewrites.
    snapshot_every: u64,
    cycles_since_snapshot: u64,
    snapshot: Vec<u8>,
    deltas: Vec<u8>,
    replay: Vec<u8>,
    /// Current rollout-controller state (raw [`crate::config`] codec
    /// bytes; empty = no rollout state). Rewritten wholesale on every
    /// rollout mutation — the state is small and self-contained, so one
    /// current record beats an unbounded mutation log.
    rollout: Vec<u8>,
    /// Delta records appended since the last compaction (diagnostics).
    deltas_recorded: u64,
    /// Snapshot rewrites performed (diagnostics).
    compactions: u64,
}

fn append_record(buf: &mut Vec<u8>, tag: u8, enb: EnbId, tti: Tti, msg: &FlexranMessage) {
    let payload = msg.encode(Header::default());
    buf.push(tag);
    buf.extend_from_slice(&enb.0.to_be_bytes());
    buf.extend_from_slice(&tti.0.to_be_bytes());
    buf.extend_from_slice(&(payload.len() as u32).to_be_bytes());
    buf.extend_from_slice(&payload);
}

/// Panic-free cursor over a record section.
fn take<'a>(buf: &mut &'a [u8], n: usize) -> Result<&'a [u8]> {
    if buf.len() < n {
        return Err(FlexError::Codec("journal truncated".into()));
    }
    let (head, rest) = buf.split_at(n);
    *buf = rest;
    Ok(head)
}

fn take_u32(buf: &mut &[u8]) -> Result<u32> {
    let b = take(buf, 4)?;
    let mut a = [0u8; 4];
    a.copy_from_slice(b);
    Ok(u32::from_be_bytes(a))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64> {
    let b = take(buf, 8)?;
    let mut a = [0u8; 8];
    a.copy_from_slice(b);
    Ok(u64::from_be_bytes(a))
}

/// One decoded journal record.
#[derive(Debug, Clone)]
pub struct JournalRecord {
    pub enb: EnbId,
    pub tti: Tti,
    pub msg: FlexranMessage,
}

/// Everything a restarted master reconstructs from the journal bytes.
#[derive(Debug, Clone, Default)]
pub struct RecoveredState {
    /// Snapshot + delta records, in application order.
    pub rib_records: Vec<JournalRecord>,
    /// Delegated-state messages per agent, in original send order.
    pub replay: BTreeMap<EnbId, Vec<FlexranMessage>>,
    /// Rollout-controller state (raw [`crate::config`] codec bytes), if a
    /// rollout record was journaled. Last record wins.
    pub rollout: Option<Vec<u8>>,
}

fn parse_section(mut buf: &[u8], expect_tag: u8, out: &mut Vec<JournalRecord>) -> Result<()> {
    while !buf.is_empty() {
        let tag = take(&mut buf, 1)?;
        if tag != [expect_tag] {
            return Err(FlexError::Codec(format!(
                "journal record tag {} where {expect_tag} expected",
                tag.first().copied().unwrap_or(0)
            )));
        }
        let enb = EnbId(take_u32(&mut buf)?);
        let tti = Tti(take_u64(&mut buf)?);
        let len = take_u32(&mut buf)? as usize;
        if len > MAX_RECORD_BYTES {
            return Err(FlexError::Codec(format!(
                "journal record of {len} bytes exceeds the {MAX_RECORD_BYTES}-byte cap"
            )));
        }
        let payload = take(&mut buf, len)?;
        let (_, msg) = FlexranMessage::decode(payload)?;
        out.push(JournalRecord { enb, tti, msg });
    }
    Ok(())
}

/// Parse the replay section, which carries two record kinds: delegated
/// state (`TAG_REPLAY`, wire-envelope payload) and the rollout state
/// record (`TAG_ROLLOUT`, raw codec payload — the one record kind whose
/// payload is not a `FlexranMessage`). Journals from before the rollout
/// subsystem simply have no `TAG_ROLLOUT` record and recover with
/// `rollout: None`.
fn parse_replay_section(mut buf: &[u8], state: &mut RecoveredState) -> Result<()> {
    while !buf.is_empty() {
        let tag = take(&mut buf, 1)?;
        let tag = tag.first().copied().unwrap_or(0);
        if tag != TAG_REPLAY && tag != TAG_ROLLOUT {
            return Err(FlexError::Codec(format!(
                "journal record tag {tag} where {TAG_REPLAY} or {TAG_ROLLOUT} expected"
            )));
        }
        let enb = EnbId(take_u32(&mut buf)?);
        let _tti = Tti(take_u64(&mut buf)?);
        let len = take_u32(&mut buf)? as usize;
        if len > MAX_RECORD_BYTES {
            return Err(FlexError::Codec(format!(
                "journal record of {len} bytes exceeds the {MAX_RECORD_BYTES}-byte cap"
            )));
        }
        let payload = take(&mut buf, len)?;
        if tag == TAG_ROLLOUT {
            state.rollout = Some(payload.to_vec());
        } else {
            let (_, msg) = FlexranMessage::decode(payload)?;
            state.replay.entry(enb).or_default().push(msg);
        }
    }
    Ok(())
}

impl RibJournal {
    pub fn new(snapshot_every: u64) -> Self {
        RibJournal {
            snapshot_every: snapshot_every.max(1),
            cycles_since_snapshot: 0,
            snapshot: Vec::new(),
            deltas: Vec::new(),
            replay: Vec::new(),
            rollout: Vec::new(),
            deltas_recorded: 0,
            compactions: 0,
        }
    }

    /// Journal one RIB-mutating agent message (called right after the
    /// updater folds it).
    pub fn record_delta(&mut self, enb: EnbId, now: Tti, msg: &FlexranMessage) {
        append_record(&mut self.deltas, TAG_RIB, enb, now, msg);
        self.deltas_recorded += 1;
    }

    /// Journal one delegated-state message (stats subscription, VSF push,
    /// policy). Replay records survive compaction: they are the master's
    /// *intent*, not derivable from the RIB.
    pub fn record_replay(&mut self, enb: EnbId, msg: &FlexranMessage) {
        append_record(&mut self.replay, TAG_REPLAY, enb, Tti::ZERO, msg);
    }

    /// Journal the rollout controller's current state (raw codec bytes),
    /// replacing any previous rollout record. Like replay records, the
    /// rollout record is intent — not derivable from the RIB — and
    /// survives compaction.
    pub fn record_rollout(&mut self, state: &[u8]) {
        self.rollout.clear();
        self.rollout.extend_from_slice(state);
    }

    /// Called once per closed write cycle; rewrites the snapshot and
    /// drops the deltas every `snapshot_every` cycles.
    pub fn on_write_cycle(&mut self, rib: &Rib) {
        self.cycles_since_snapshot += 1;
        if self.cycles_since_snapshot >= self.snapshot_every {
            // lint:allow(alloc-reach) compaction — amortized over snapshot_every cycles
            self.compact(rib);
        }
    }

    /// Rewrite the snapshot from the live RIB now and clear the deltas.
    pub fn compact(&mut self, rib: &Rib) {
        self.snapshot.clear();
        synthesize_snapshot(rib, &mut self.snapshot);
        self.deltas.clear();
        self.cycles_since_snapshot = 0;
        self.compactions += 1;
    }

    /// Carry the replay section of a previous incarnation forward
    /// (recovery seeding — a twice-crashed master must still owe its
    /// agents the same delegated state).
    pub fn seed_replay(&mut self, state: &RecoveredState) {
        for (enb, msgs) in &state.replay {
            for msg in msgs {
                self.record_replay(*enb, msg);
            }
        }
        if let Some(rollout) = &state.rollout {
            self.record_rollout(rollout);
        }
    }

    /// Serialize the whole journal (what a deployment would fsync).
    pub fn bytes(&self) -> Vec<u8> {
        let rollout_len = if self.rollout.is_empty() {
            0
        } else {
            17 + self.rollout.len()
        };
        let mut out = Vec::with_capacity(
            12 + self.snapshot.len() + self.replay.len() + rollout_len + self.deltas.len(),
        );
        out.extend_from_slice(MAGIC);
        out.extend_from_slice(&(self.snapshot.len() as u32).to_be_bytes());
        out.extend_from_slice(&self.snapshot);
        out.extend_from_slice(&((self.replay.len() + rollout_len) as u32).to_be_bytes());
        out.extend_from_slice(&self.replay);
        if !self.rollout.is_empty() {
            // Same record framing as every other kind, raw payload: the
            // rollout state has no eNodeB or TTI of its own.
            out.push(TAG_ROLLOUT);
            out.extend_from_slice(&0u32.to_be_bytes());
            out.extend_from_slice(&0u64.to_be_bytes());
            out.extend_from_slice(&(self.rollout.len() as u32).to_be_bytes());
            out.extend_from_slice(&self.rollout);
        }
        out.extend_from_slice(&self.deltas);
        out
    }

    /// Parse journal bytes back into records. Structured errors on any
    /// corruption — truncated sections, bad magic, oversized records,
    /// undecodable payloads — never a panic.
    pub fn parse(bytes: &[u8]) -> Result<RecoveredState> {
        let mut buf = bytes;
        let magic = take(&mut buf, 4)?;
        if magic != MAGIC {
            return Err(FlexError::Codec("journal magic mismatch".into()));
        }
        let snap_len = take_u32(&mut buf)? as usize;
        let snapshot = take(&mut buf, snap_len)?;
        let replay_len = take_u32(&mut buf)? as usize;
        let replay = take(&mut buf, replay_len)?;
        let deltas = buf;

        let mut state = RecoveredState::default();
        parse_section(snapshot, TAG_RIB, &mut state.rib_records)?;
        parse_section(deltas, TAG_RIB, &mut state.rib_records)?;
        parse_replay_section(replay, &mut state)?;
        Ok(state)
    }

    /// Journal heap footprint (bounded-memory assertions).
    pub fn heap_bytes(&self) -> usize {
        self.snapshot.capacity()
            + self.deltas.capacity()
            + self.replay.capacity()
            + self.rollout.capacity()
    }

    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    pub fn deltas_recorded(&self) -> u64 {
        self.deltas_recorded
    }
}

/// Emit the message sequence that rebuilds `rib` exactly when replayed
/// through [`crate::updater::RibUpdater::apply`] at each record's TTI.
fn synthesize_snapshot(rib: &Rib, out: &mut Vec<u8>) {
    for agent in rib.agents() {
        let enb = agent.enb_id;
        append_record(
            out,
            TAG_RIB,
            enb,
            agent.connected_at,
            &FlexranMessage::Hello(Hello {
                enb_id: enb,
                n_cells: agent.n_cells,
                capabilities: agent.capabilities.clone(),
                // Sessions are marked down on recovery and agents
                // re-introduce themselves, so the live signature arrives
                // with the post-recovery Hello, not from the snapshot.
                applied_config: 0,
            }),
        );
        for cell in agent.cells() {
            if let Some(config) = &cell.config {
                append_record(
                    out,
                    TAG_RIB,
                    enb,
                    cell.updated,
                    &FlexranMessage::ConfigReply(ConfigReply {
                        enb_id: enb,
                        cells: vec![*config],
                        ues: Vec::new(),
                    }),
                );
            }
            if let Some(report) = &cell.last_report {
                append_record(
                    out,
                    TAG_RIB,
                    enb,
                    cell.updated,
                    &FlexranMessage::StatsReply(StatsReply {
                        enb_id: enb,
                        tti: cell.updated.0,
                        cells: vec![*report],
                        ues: Vec::new(),
                    }),
                );
            }
            for ue in cell.ues() {
                // The attach/RACH event restores the UE tag and the
                // connected flag (neither carried by reports); a stats
                // record then overwrites the report verbatim. UEs that
                // never produced a stats report still hold the default
                // report (whose RNTI field is 0, which the updater's
                // validation rejects) — they are restored by the event
                // alone, which recreates that default state exactly.
                let kind = if ue.report.connected {
                    EventKind::UeAttached
                } else {
                    EventKind::RachAttempt
                };
                append_record(
                    out,
                    TAG_RIB,
                    enb,
                    ue.updated,
                    &FlexranMessage::EventNotification(EventNotification {
                        enb_id: enb,
                        kind,
                        cell: cell.cell_id.0,
                        rnti: ue.rnti.0,
                        ue_tag: ue.ue_tag.0,
                        tti: ue.updated.0,
                        ..EventNotification::default()
                    }),
                );
                if ue.report.rnti != 0 {
                    append_record(
                        out,
                        TAG_RIB,
                        enb,
                        ue.updated,
                        &FlexranMessage::StatsReply(StatsReply {
                            enb_id: enb,
                            tti: ue.updated.0,
                            cells: Vec::new(),
                            ues: vec![ue.report.clone()],
                        }),
                    );
                }
            }
        }
        if let Some((agent_tti, received)) = agent.last_sync {
            append_record(
                out,
                TAG_RIB,
                enb,
                received,
                &FlexranMessage::SubframeTrigger(SubframeTrigger {
                    enb_id: enb,
                    sfn: (agent_tti.0 / 10 % 1024) as u16,
                    sf: (agent_tti.0 % 10) as u8,
                    tti: agent_tti.0,
                }),
            );
        }
    }
}

/// Magic for a multi-segment journal container (one `FXJ1` journal per
/// RIB shard, concatenated): `FXS1  u32 count  (u32 len  bytes)*`.
const SEG_MAGIC: &[u8; 4] = b"FXS1";

/// Wrap per-shard journal byte blobs into one container blob (what a
/// sharded master persists as its crash-recovery image).
pub fn encode_segments(segments: &[Vec<u8>]) -> Vec<u8> {
    let total: usize = segments.iter().map(|s| s.len() + 4).sum();
    let mut out = Vec::with_capacity(8 + total);
    out.extend_from_slice(SEG_MAGIC);
    out.extend_from_slice(&(segments.len() as u32).to_be_bytes());
    for seg in segments {
        out.extend_from_slice(&(seg.len() as u32).to_be_bytes());
        out.extend_from_slice(seg);
    }
    out
}

/// Split a container blob back into per-shard journal segments. A bare
/// single-shard `FXJ1` journal (the pre-sharding format) parses as one
/// segment, so old journal images still recover.
pub fn split_segments(bytes: &[u8]) -> Result<Vec<&[u8]>> {
    if bytes.starts_with(MAGIC) {
        return Ok(vec![bytes]);
    }
    let mut buf = bytes;
    let magic = take(&mut buf, 4)?;
    if magic != SEG_MAGIC {
        return Err(FlexError::Codec("journal magic mismatch".into()));
    }
    let count = take_u32(&mut buf)? as usize;
    let mut segments = Vec::with_capacity(count.min(1024));
    for _ in 0..count {
        let len = take_u32(&mut buf)? as usize;
        segments.push(take(&mut buf, len)?);
    }
    if !buf.is_empty() {
        return Err(FlexError::Codec(
            "journal container has trailing bytes".into(),
        ));
    }
    Ok(segments)
}

/// Whether a message kind mutates the RIB when applied by the updater —
/// i.e. whether it belongs in the delta journal.
pub fn mutates_rib(msg: &FlexranMessage) -> bool {
    matches!(
        msg,
        FlexranMessage::Hello(_)
            | FlexranMessage::ConfigReply(_)
            | FlexranMessage::SubframeTrigger(_)
            | FlexranMessage::StatsReply(_)
            | FlexranMessage::EventNotification(_)
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::updater::RibUpdater;
    use flexran_proto::messages::stats::UeReport;

    fn rebuild(state: &RecoveredState) -> Rib {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        for r in &state.rib_records {
            up.apply(&mut rib, r.enb, &r.msg, r.tti);
        }
        rib
    }

    fn populate(rib: &mut Rib, up: &mut RibUpdater, j: &mut RibJournal) {
        let feed = |rib: &mut Rib,
                    up: &mut RibUpdater,
                    j: &mut RibJournal,
                    enb: EnbId,
                    tti: Tti,
                    msg: FlexranMessage| {
            up.apply(rib, enb, &msg, tti);
            if mutates_rib(&msg) {
                j.record_delta(enb, tti, &msg);
            }
        };
        feed(
            rib,
            up,
            j,
            EnbId(1),
            Tti(3),
            FlexranMessage::Hello(Hello {
                enb_id: EnbId(1),
                n_cells: 1,
                capabilities: vec!["dl_scheduling".into()],
                applied_config: 0,
            }),
        );
        feed(
            rib,
            up,
            j,
            EnbId(1),
            Tti(10),
            FlexranMessage::EventNotification(EventNotification {
                enb_id: EnbId(1),
                kind: EventKind::UeAttached,
                cell: 0,
                rnti: 0x100,
                ue_tag: 7,
                tti: 9,
                ..EventNotification::default()
            }),
        );
        feed(
            rib,
            up,
            j,
            EnbId(1),
            Tti(20),
            FlexranMessage::StatsReply(StatsReply {
                enb_id: EnbId(1),
                tti: 18,
                cells: vec![],
                ues: vec![UeReport {
                    rnti: 0x100,
                    cell: 0,
                    connected: true,
                    wideband_cqi: 11,
                    subband_cqi: vec![9, 10, 11],
                    ..UeReport::default()
                }],
            }),
        );
        feed(
            rib,
            up,
            j,
            EnbId(1),
            Tti(21),
            FlexranMessage::SubframeTrigger(SubframeTrigger {
                enb_id: EnbId(1),
                sfn: 1,
                sf: 9,
                tti: 19,
            }),
        );
    }

    #[test]
    fn deltas_roundtrip_to_equal_rib() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000); // no compaction in this test
        populate(&mut rib, &mut up, &mut j);
        let state = RibJournal::parse(&j.bytes()).unwrap();
        assert_eq!(rebuild(&state), rib);
    }

    #[test]
    fn compacted_snapshot_roundtrips_to_equal_rib() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        j.compact(&rib);
        assert_eq!(j.deltas_recorded(), 4);
        assert_eq!(j.compactions(), 1);
        let state = RibJournal::parse(&j.bytes()).unwrap();
        assert_eq!(
            rebuild(&state),
            rib,
            "snapshot must rebuild the RIB exactly"
        );
    }

    #[test]
    fn replay_section_survives_compaction() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        j.record_replay(
            EnbId(1),
            &FlexranMessage::StatsRequest(flexran_proto::messages::StatsRequest::default()),
        );
        j.compact(&rib);
        let state = RibJournal::parse(&j.bytes()).unwrap();
        let ops = state.replay.get(&EnbId(1)).unwrap();
        assert_eq!(ops.len(), 1);
        assert_eq!(ops[0].kind(), "stats-request");
    }

    #[test]
    fn rollout_record_roundtrips_and_survives_compaction() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        j.record_rollout(b"rollout-state-v1");
        // Also a replay record, to prove the two kinds coexist in order.
        j.record_replay(
            EnbId(1),
            &FlexranMessage::StatsRequest(flexran_proto::messages::StatsRequest::default()),
        );
        j.compact(&rib);
        let state = RibJournal::parse(&j.bytes()).unwrap();
        assert_eq!(state.rollout.as_deref(), Some(&b"rollout-state-v1"[..]));
        assert_eq!(state.replay.get(&EnbId(1)).unwrap().len(), 1);
        // A later record replaces the earlier one (current-state semantics).
        j.record_rollout(b"rollout-state-v2");
        let state = RibJournal::parse(&j.bytes()).unwrap();
        assert_eq!(state.rollout.as_deref(), Some(&b"rollout-state-v2"[..]));
        // Seeding a fresh journal carries the record forward.
        let mut j2 = RibJournal::new(8);
        j2.seed_replay(&state);
        let state2 = RibJournal::parse(&j2.bytes()).unwrap();
        assert_eq!(state2.rollout.as_deref(), Some(&b"rollout-state-v2"[..]));
    }

    #[test]
    fn journal_without_rollout_record_recovers_none() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        let state = RibJournal::parse(&j.bytes()).unwrap();
        assert!(state.rollout.is_none());
    }

    #[test]
    fn corrupt_journals_error_structurally() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        let good = j.bytes();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(RibJournal::parse(&bad).is_err());
        // Truncations at every boundary must error, never panic.
        for cut in 0..good.len() {
            if cut == 12 {
                continue; // empty journal header alone is valid only at full length
            }
            let _ = RibJournal::parse(&good[..cut]);
        }
        // Flipped byte anywhere: error or (rarely) a different valid
        // journal — never a panic.
        for i in 0..good.len() {
            let mut mutated = good.clone();
            mutated[i] ^= 0x55;
            let _ = RibJournal::parse(&mutated);
        }
    }

    #[test]
    fn segment_container_roundtrips() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(1000);
        populate(&mut rib, &mut up, &mut j);
        let segs = vec![j.bytes(), RibJournal::new(4).bytes(), Vec::new()];
        let blob = encode_segments(&segs);
        let parts = split_segments(&blob).unwrap();
        assert_eq!(parts.len(), 3);
        assert_eq!(parts[0], segs[0].as_slice());
        assert_eq!(parts[1], segs[1].as_slice());
        assert!(parts[2].is_empty());
        // The first segment is a complete journal in its own right.
        let state = RibJournal::parse(parts[0]).unwrap();
        assert_eq!(rebuild(&state), rib);
    }

    #[test]
    fn bare_journal_parses_as_one_segment() {
        // Pre-sharding journal images (bare FXJ1) must keep recovering.
        let j = RibJournal::new(8);
        let bytes = j.bytes();
        let parts = split_segments(&bytes).unwrap();
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], bytes.as_slice());
    }

    #[test]
    fn corrupt_containers_error_structurally() {
        let blob = encode_segments(&[RibJournal::new(8).bytes()]);
        assert!(split_segments(b"not a journal").is_err());
        assert!(split_segments(&[]).is_err());
        // Truncations and byte flips: error or a valid parse, never panic.
        for cut in 0..blob.len() {
            let _ = split_segments(&blob[..cut]);
        }
        for i in 0..blob.len() {
            let mut mutated = blob.clone();
            mutated[i] ^= 0x55;
            let _ = split_segments(&mutated);
        }
        // Trailing garbage is corruption, not slack.
        let mut padded = blob.clone();
        padded.push(0);
        assert!(split_segments(&padded).is_err());
    }

    #[test]
    fn on_write_cycle_compacts_on_schedule() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let mut j = RibJournal::new(3);
        populate(&mut rib, &mut up, &mut j);
        j.on_write_cycle(&rib);
        j.on_write_cycle(&rib);
        assert_eq!(j.compactions(), 0);
        j.on_write_cycle(&rib);
        assert_eq!(j.compactions(), 1);
        // Memory stays bounded across many cycles.
        let after_first = j.heap_bytes();
        for _ in 0..100 {
            j.on_write_cycle(&rib);
        }
        assert!(j.heap_bytes() <= after_first.max(1) * 2);
    }
}
