//! The RIB Updater — the single writer (paper Fig. 5).
//!
//! "Only the RIB Updater component of the master can update the RIB with
//! the information received from the agents. [...] Having just a single
//! writer and multiple readers helps avoid [write conflicts]." Everything
//! arriving from agents funnels through [`RibUpdater::apply`]; the master
//! runs it in the RIB slot of each TTI cycle.

use flexran_proto::messages::events::EventKind;
use flexran_proto::messages::{EventNotification, FlexranMessage};
use flexran_types::ids::{CellId, EnbId, Rnti, UeId};
use flexran_types::time::Tti;

use crate::rib::Rib;

/// An event as surfaced to the Event Notification Service / applications.
#[derive(Debug, Clone, PartialEq)]
pub struct NotifiedEvent {
    pub enb: EnbId,
    pub notification: EventNotification,
    /// Master time the event was processed.
    pub received: Tti,
}

/// The single writer.
#[derive(Debug, Default)]
pub struct RibUpdater {
    /// Update counters (Fig. 8's "core components" cost driver).
    pub stats_updates: u64,
    pub sync_updates: u64,
    pub event_updates: u64,
    /// Reports and events rejected by semantic validation: a cell id
    /// outside the agent's `Hello`-declared range, or an RNTI of 0 (never
    /// a valid C-RNTI). The wire's integrity trailer makes these
    /// unreachable from channel corruption; this layer guards the RIB
    /// against a misbehaving agent implementation itself.
    pub rejected_updates: u64,
}

impl RibUpdater {
    pub fn new() -> Self {
        Self::default()
    }

    /// Agent session declared dead: open the subtree's staleness epoch.
    /// Liveness tracking funnels its RIB writes through the single
    /// writer, like every other mutation.
    pub fn agent_down(&mut self, rib: &mut Rib, enb: EnbId, now: Tti) {
        rib.agent_mut(enb).mark_stale(now);
    }

    /// Agent session restored: end the staleness epoch.
    pub fn agent_rejoined(&mut self, rib: &mut Rib, enb: EnbId) {
        rib.agent_mut(enb).mark_fresh();
    }

    /// Apply one agent message to the RIB. Returns an event to notify
    /// applications about, when the message is an event trigger.
    pub fn apply(
        &mut self,
        rib: &mut Rib,
        enb: EnbId,
        msg: &FlexranMessage,
        now: Tti,
    ) -> Option<NotifiedEvent> {
        match msg {
            FlexranMessage::Hello(h) => {
                let agent = rib.agent_mut(enb);
                agent.enb_id = h.enb_id;
                agent.capabilities.clone_from(&h.capabilities);
                agent.n_cells = h.n_cells;
                agent.connected_at = now;
                None
            }
            FlexranMessage::ConfigReply(rep) => {
                let agent = rib.agent_mut(enb);
                for c in &rep.cells {
                    if u32::from(c.cell_id) >= agent.n_cells {
                        self.rejected_updates += 1;
                        continue;
                    }
                    let node = agent.cell_entry(CellId(c.cell_id));
                    node.cell_id = CellId(c.cell_id);
                    node.config = Some(*c);
                    node.updated = now;
                }
                None
            }
            FlexranMessage::SubframeTrigger(t) => {
                self.sync_updates += 1;
                rib.agent_mut(enb).last_sync = Some((Tti(t.tti), now));
                None
            }
            FlexranMessage::StatsReply(rep) => {
                self.stats_updates += 1;
                let agent = rib.agent_mut(enb);
                let declared = agent.n_cells;
                for c in &rep.cells {
                    if u32::from(c.cell_id) >= declared {
                        self.rejected_updates += 1;
                        continue;
                    }
                    let node = agent.cell_entry(CellId(c.cell_id));
                    node.cell_id = CellId(c.cell_id);
                    node.last_report = Some(*c);
                    node.updated = now;
                }
                for u in &rep.ues {
                    if u32::from(u.cell) >= declared || u.rnti == 0 {
                        self.rejected_updates += 1;
                        continue;
                    }
                    let cell = agent.cell_entry(CellId(u.cell));
                    cell.cell_id = CellId(u.cell);
                    let node = cell.ue_entry(Rnti(u.rnti));
                    node.report.clone_from(u);
                    node.updated = now;
                }
                None
            }
            FlexranMessage::EventNotification(n) => {
                self.event_updates += 1;
                let agent = rib.agent_mut(enb);
                match n.kind {
                    EventKind::RachAttempt | EventKind::UeAttached => {
                        if u32::from(n.cell) >= agent.n_cells || n.rnti == 0 {
                            self.rejected_updates += 1;
                            return None;
                        }
                        let cell = agent.cell_entry(CellId(n.cell));
                        cell.cell_id = CellId(n.cell);
                        let node = cell.ue_entry(Rnti(n.rnti));
                        node.ue_tag = UeId(n.ue_tag);
                        if n.kind == EventKind::UeAttached {
                            node.report.connected = true;
                        }
                        node.updated = now;
                    }
                    EventKind::AttachFailed
                    | EventKind::UeDetached
                    | EventKind::HandoverExecuted => {
                        if let Some(cell) = agent.cell_mut(CellId(n.cell)) {
                            cell.remove_ue(Rnti(n.rnti));
                            // A cell node that existed only to hold this
                            // UE (no config, no report) is reclaimed —
                            // hostile attach/detach churn must not grow
                            // the forest, and the journal snapshot has no
                            // message that could recreate a bare cell.
                            if cell.n_ues() == 0
                                && cell.config.is_none()
                                && cell.last_report.is_none()
                            {
                                agent.remove_cell(CellId(n.cell));
                            }
                        }
                    }
                    // Liveness edges are synthesized master-side, not
                    // received from agents; nothing to fold into the RIB.
                    EventKind::SchedulingRequest
                    | EventKind::MeasurementReport
                    | EventKind::DecisionMissedDeadline
                    | EventKind::AgentDown
                    | EventKind::AgentUp => {}
                }
                Some(NotifiedEvent {
                    enb,
                    // lint:allow(alloc-reach) owned copy handed to the apps slot — event-driven
                    notification: n.clone(),
                    received: now,
                })
            }
            // Master-to-agent message kinds never reach the updater.
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_proto::messages::stats::{StatsReply, UeReport};
    use flexran_proto::messages::{Hello, SubframeTrigger};

    fn hello() -> FlexranMessage {
        FlexranMessage::Hello(Hello {
            enb_id: EnbId(1),
            n_cells: 1,
            capabilities: vec!["dl_scheduling".into()],
            applied_config: 0,
        })
    }

    #[test]
    fn hello_creates_agent() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        up.apply(&mut rib, EnbId(1), &hello(), Tti(5));
        let agent = rib.agent(EnbId(1)).unwrap();
        assert_eq!(agent.connected_at, Tti(5));
        assert_eq!(agent.capabilities, vec!["dl_scheduling"]);
    }

    #[test]
    fn stats_reply_populates_forest() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        up.apply(&mut rib, EnbId(1), &hello(), Tti(0));
        let reply = StatsReply {
            enb_id: EnbId(1),
            tti: 100,
            cells: vec![],
            ues: vec![UeReport {
                rnti: 0x100,
                cell: 0,
                wideband_cqi: 12,
                ..UeReport::default()
            }],
        };
        up.apply(
            &mut rib,
            EnbId(1),
            &FlexranMessage::StatsReply(reply),
            Tti(101),
        );
        let ue = rib.ue(EnbId(1), CellId(0), Rnti(0x100)).unwrap();
        assert_eq!(ue.report.wideband_cqi, 12);
        assert_eq!(ue.updated, Tti(101));
        assert_eq!(up.stats_updates, 1);
    }

    #[test]
    fn sync_records_staleness_pair() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        up.apply(
            &mut rib,
            EnbId(1),
            &FlexranMessage::SubframeTrigger(SubframeTrigger {
                enb_id: EnbId(1),
                sfn: 10,
                sf: 3,
                tti: 103,
            }),
            Tti(110),
        );
        assert_eq!(
            rib.agent(EnbId(1)).unwrap().last_sync,
            Some((Tti(103), Tti(110)))
        );
    }

    #[test]
    fn attach_detach_events_manage_leaves() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        up.apply(&mut rib, EnbId(1), &hello(), Tti(0));
        let mut attach = EventNotification {
            enb_id: EnbId(1),
            kind: EventKind::UeAttached,
            cell: 0,
            rnti: 0x100,
            ue_tag: 9,
            tti: 50,
            ..EventNotification::default()
        };
        let ev = up
            .apply(
                &mut rib,
                EnbId(1),
                &FlexranMessage::EventNotification(attach.clone()),
                Tti(55),
            )
            .expect("events are surfaced");
        assert_eq!(ev.enb, EnbId(1));
        assert!(
            rib.ue(EnbId(1), CellId(0), Rnti(0x100))
                .unwrap()
                .report
                .connected
        );
        attach.kind = EventKind::UeDetached;
        up.apply(
            &mut rib,
            EnbId(1),
            &FlexranMessage::EventNotification(attach),
            Tti(60),
        );
        assert!(rib.ue(EnbId(1), CellId(0), Rnti(0x100)).is_none());
    }

    #[test]
    fn undeclared_cells_and_null_rntis_rejected() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        up.apply(&mut rib, EnbId(1), &hello(), Tti(0)); // declares 1 cell
        let reply = StatsReply {
            enb_id: EnbId(1),
            tti: 10,
            cells: vec![],
            ues: vec![
                // Cell id outside the declared range: a phantom subtree
                // nothing would ever prune.
                UeReport {
                    rnti: 0x100,
                    cell: 620,
                    ..UeReport::default()
                },
                // RNTI 0 is never a valid C-RNTI.
                UeReport {
                    rnti: 0,
                    cell: 0,
                    ..UeReport::default()
                },
            ],
        };
        up.apply(
            &mut rib,
            EnbId(1),
            &FlexranMessage::StatsReply(reply),
            Tti(11),
        );
        assert_eq!(up.rejected_updates, 2);
        let agent = rib.agent(EnbId(1)).unwrap();
        assert!(
            agent.cells().is_empty(),
            "phantom state folded into the RIB"
        );
        // Same guard on the event path.
        let ev = EventNotification {
            enb_id: EnbId(1),
            kind: EventKind::UeAttached,
            cell: 1144,
            rnti: 0x200,
            tti: 12,
            ..EventNotification::default()
        };
        assert!(up
            .apply(
                &mut rib,
                EnbId(1),
                &FlexranMessage::EventNotification(ev),
                Tti(12),
            )
            .is_none());
        assert_eq!(up.rejected_updates, 3);
        assert!(rib.agent(EnbId(1)).unwrap().cells().is_empty());
    }

    #[test]
    fn master_bound_messages_ignored() {
        let mut rib = Rib::new();
        let mut up = RibUpdater::new();
        let msg = FlexranMessage::DlSchedulingCommand(
            flexran_proto::messages::DlSchedulingCommand::default(),
        );
        assert!(up.apply(&mut rib, EnbId(1), &msg, Tti(0)).is_none());
        assert_eq!(rib.n_agents(), 0);
    }
}
