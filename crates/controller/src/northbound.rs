//! The northbound API (paper §4.4), version 3: shard-transparent, with
//! fleet config rollout.
//!
//! RAN applications "monitor the infrastructure through the information
//! obtained from the RIB and apply their control decisions through the
//! agent control modules". They never write the RIB directly, and since
//! the control-plane sharding they never see shards either: reads and
//! writes route to the owning shard by agent id behind this facade. The
//! API splits the two capabilities into separate handles:
//!
//! * [`RibView`] — the read capability: master time plus the (possibly
//!   sharded) RIB forest, including per-agent session-staleness signals.
//!   Everything on it is `&self`; an application holding only a
//!   `RibView` provably cannot emit commands.
//! * [`ControlHandle`] — the write capability: a staged command sink the
//!   master routes to the owning shards after the application slot.
//!   Scheduling commands go through [`ControlHandle::schedule_dl`],
//!   which claims the cell × subframe slot in the **conflict guard**
//!   (§7.3 future work) internally — applications cannot bypass or
//!   observe other apps' claims.
//!
//! Both handles are minted by [`Northbound`], the versioned facade the
//! master (and any fixture driving an [`App`] directly) owns. Since v2,
//! `ControlHandle` cannot be constructed from parts — the facade is the
//! only mint, so every staged command flows through one claim table and
//! one transaction-id stream no matter how many shards exist.
//!
//! Two execution patterns (paper: periodic and event-based) map to the
//! two trait hooks: [`App::on_cycle`] runs every master TTI cycle;
//! [`App::on_event`] runs when the Event Notification Service delivers an
//! agent event. An application may use both.

use std::collections::BTreeSet;

use flexran_proto::messages::{DlSchedulingCommand, FlexranMessage, Header};
use flexran_types::budget::BudgetStats;
use flexran_types::ids::{CellId, EnbId, Rnti};
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

use crate::config::{RolloutConfig, RolloutController, RolloutEvent, RolloutStatus};
use crate::rib::{AgentNode, CellNode, Rib, UeNode};
use crate::shard::RibShard;
use crate::updater::NotifiedEvent;

/// Application priority: higher runs earlier within the apps slot (the
/// paper's Task Manager "assign\[s\] priorities to running services" —
/// e.g. a centralized MAC scheduler above a monitoring app).
pub type Priority = u8;

/// A RAN control/management application.
pub trait App: Send {
    fn name(&self) -> &str;

    /// Higher = scheduled earlier in the cycle. Time-critical apps (a
    /// centralized scheduler) should use ≥ 200; monitoring ≈ 10.
    fn priority(&self) -> Priority {
        10
    }

    /// Periodic hook: once per master TTI cycle.
    fn on_cycle(&mut self, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>);

    /// Event hook: agent events delivered by the notification service.
    fn on_event(
        &mut self,
        _event: &NotifiedEvent,
        _rib: &RibView<'_>,
        _ctl: &mut ControlHandle<'_>,
    ) {
    }
}

/// Claims on cell × subframe scheduling slots, preventing two apps from
/// both scheduling the same resources.
#[derive(Debug, Default)]
pub struct ConflictGuard {
    /// Ordered so any iteration (diagnostics, future introspection) is
    /// deterministic — per-TTI controller state must never hash-iterate.
    claims: BTreeSet<(EnbId, u16, u64)>,
    /// Conflicts refused so far.
    pub conflicts: u64,
}

impl ConflictGuard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `(enb, cell, target)`; errors if already claimed this cycle
    /// window.
    pub fn claim(&mut self, enb: EnbId, cell: u16, target: u64) -> Result<()> {
        if self.claims.insert((enb, cell, target)) {
            Ok(())
        } else {
            self.conflicts += 1;
            Err(FlexError::Conflict(format!(
                "subframe {target} of {enb}/cell{cell} already claimed by another application"
            )))
        }
    }

    /// Drop claims older than `horizon` (they can never conflict again).
    pub fn expire_before(&mut self, horizon: Tti) {
        self.claims.retain(|(_, _, t)| *t >= horizon.0);
    }

    pub fn n_claims(&self) -> usize {
        self.claims.len()
    }
}

/// The versioned northbound facade: the single mint for [`RibView`] and
/// [`ControlHandle`]. The master owns one; test fixtures driving an
/// [`App`] directly own their own. All staged commands, conflict claims
/// and app-path transaction ids live here, independent of how the RIB
/// is sharded underneath.
#[derive(Debug, Default)]
pub struct Northbound {
    outbox: Vec<(EnbId, Header, FlexranMessage)>,
    guard: ConflictGuard,
    xid: u32,
    /// Fleet config rollout: bundle store + canary state machine. Lives
    /// here (not on any shard) because bundles and rollout decisions are
    /// fleet-wide; the master steps it at the serial cycle barrier.
    rollout: RolloutController,
}

impl Northbound {
    /// Facade version. v1 was the direct `RibView`/`ControlHandle`
    /// construction API; v2 is shard-transparent and facade-minted; v3
    /// adds the fleet config rollout API (`apply_bundle`,
    /// `rollout_status`, `rollout_history`, `abort_rollout`).
    pub const VERSION: u32 = 3;

    pub fn new() -> Self {
        Self::default()
    }

    /// Mint the write capability for one app invocation.
    pub fn control(&mut self) -> ControlHandle<'_> {
        ControlHandle {
            outbox: &mut self.outbox,
            guard: &mut self.guard,
            xid: &mut self.xid,
        }
    }

    /// Commands staged so far this slot, in staging order (fixtures
    /// assert on these; the master drains them with
    /// [`Northbound::take_staged`]).
    pub fn staged(&self) -> &[(EnbId, Header, FlexranMessage)] {
        &self.outbox
    }

    /// Drain the staged commands for routing to the owning shards.
    pub fn take_staged(&mut self) -> Vec<(EnbId, Header, FlexranMessage)> {
        std::mem::take(&mut self.outbox)
    }

    /// Conflicts refused so far.
    pub fn conflicts(&self) -> u64 {
        self.guard.conflicts
    }

    /// Live conflict-guard claims (observability for tests).
    pub fn n_claims(&self) -> usize {
        self.guard.n_claims()
    }

    pub(crate) fn expire_claims_before(&mut self, horizon: Tti) {
        self.guard.expire_before(horizon);
    }

    // ------------------------------------------------------------------
    // Fleet config rollout (facade v3)
    // ------------------------------------------------------------------

    /// Stage a signed config bundle and start its canary-first rollout.
    /// Returns the version assigned to the bundle. Errors while another
    /// rollout is in flight.
    pub fn apply_bundle(
        &mut self,
        now: Tti,
        policy_yaml: String,
        vsf_key: String,
        scheduler: String,
        canary: EnbId,
        cfg: RolloutConfig,
    ) -> Result<u64> {
        self.rollout
            .apply(now, policy_yaml, vsf_key, scheduler, canary, cfg)
    }

    /// Where the rollout stands (phase, versions, canary).
    pub fn rollout_status(&self) -> RolloutStatus {
        self.rollout.status()
    }

    /// The journaled rollout audit trail.
    pub fn rollout_history(&self) -> &[RolloutEvent] {
        self.rollout.history()
    }

    /// Abort the in-flight rollout, rolling back whatever was pushed.
    pub fn abort_rollout(&mut self, now: Tti) -> Result<()> {
        self.rollout.abort(now)
    }

    /// The rollout state machine (the master steps it each write cycle).
    pub(crate) fn rollout_mut(&mut self) -> &mut RolloutController {
        &mut self.rollout
    }

    pub(crate) fn rollout(&self) -> &RolloutController {
        &self.rollout
    }

    pub(crate) fn set_rollout(&mut self, rollout: RolloutController) {
        self.rollout = rollout;
    }
}

/// How a [`RibView`] reaches the forest: one RIB, or the union of the
/// master's shards. Private — shard transparency is the point.
#[derive(Clone, Copy)]
enum Backing<'a> {
    Single(&'a Rib),
    Sharded(&'a [RibShard]),
}

/// The read capability handed to applications: master time plus the RIB
/// forest, shard-transparent.
///
/// Copyable and `&self`-only — an application can fan it out to helper
/// functions freely, and holding one grants no way to emit commands.
/// Aggregating reads ([`RibView::agents`], [`RibView::all_ues`],
/// [`RibView::stale_agents`]) return in ascending agent-id order for
/// every shard layout.
#[derive(Clone, Copy)]
pub struct RibView<'a> {
    now: Tti,
    backing: Backing<'a>,
    /// Deadline-monitor snapshot carried from the master (all-zero for
    /// fixture views built with [`RibView::over`]).
    budget: BudgetStats,
}

impl<'a> RibView<'a> {
    /// A view over one plain RIB — fixtures and single-forest harnesses.
    pub fn over(now: Tti, rib: &'a Rib) -> Self {
        RibView {
            now,
            backing: Backing::Single(rib),
            budget: BudgetStats::default(),
        }
    }

    /// Attach a deadline-monitor snapshot (the master does this when
    /// minting views; fixtures may too, to test budget-aware apps).
    pub fn with_budget(mut self, budget: BudgetStats) -> Self {
        self.budget = budget;
        self
    }

    /// A view over the master's shards (the master mints these).
    pub(crate) fn sharded(now: Tti, shards: &'a [RibShard]) -> Self {
        RibView {
            now,
            backing: Backing::Sharded(shards),
            budget: BudgetStats::default(),
        }
    }

    /// Master time of this cycle.
    pub fn now(&self) -> Tti {
        self.now
    }

    /// The master's TTI-deadline monitor as of this cycle: latency
    /// percentiles, worst case, and the over-budget counter. Wall-clock
    /// observability only — applications must never let these values
    /// influence scheduling decisions (determinism contract).
    pub fn budget(&self) -> BudgetStats {
        self.budget
    }

    pub fn agent(&self, enb: EnbId) -> Option<&'a AgentNode> {
        match self.backing {
            Backing::Single(rib) => rib.agent(enb),
            Backing::Sharded(shards) => shards.iter().find_map(|s| s.rib().agent(enb)),
        }
    }

    pub fn cell(&self, enb: EnbId, cell: CellId) -> Option<&'a CellNode> {
        self.agent(enb)?.cell(cell)
    }

    pub fn ue(&self, enb: EnbId, cell: CellId, rnti: Rnti) -> Option<&'a UeNode> {
        self.cell(enb, cell)?.ue(rnti)
    }

    /// All agents, ascending by id regardless of shard layout.
    pub fn agents(&self) -> Vec<&'a AgentNode> {
        match self.backing {
            // lint:allow(alloc-reach) northbound snapshot query — off the RIB write path
            Backing::Single(rib) => rib.agents().collect(),
            Backing::Sharded(shards) => {
                let mut all: Vec<&'a AgentNode> =
                    // lint:allow(alloc-reach) northbound snapshot query — off the RIB write path
                    shards.iter().flat_map(|s| s.rib().agents()).collect();
                all.sort_by_key(|a| a.enb_id);
                all
            }
        }
    }

    pub fn n_agents(&self) -> usize {
        match self.backing {
            Backing::Single(rib) => rib.n_agents(),
            Backing::Sharded(shards) => shards.iter().map(|s| s.rib().n_agents()).sum(),
        }
    }

    /// All UEs across the forest, ascending by agent id.
    pub fn all_ues(&self) -> Vec<(EnbId, CellId, &'a UeNode)> {
        match self.backing {
            Backing::Single(rib) => rib.all_ues(),
            Backing::Sharded(_) => {
                let mut out = Vec::new();
                for agent in self.agents() {
                    for c in agent.cells() {
                        for u in c.ues() {
                            out.push((agent.enb_id, c.cell_id, u));
                        }
                    }
                }
                out
            }
        }
    }

    pub fn n_ues(&self) -> usize {
        match self.backing {
            Backing::Single(rib) => rib.n_ues(),
            Backing::Sharded(shards) => shards.iter().map(|s| s.rib().n_ues()).sum(),
        }
    }

    /// Agents whose sessions are currently down, with their epoch
    /// starts, ascending by agent id.
    pub fn stale_agents(&self) -> Vec<(EnbId, Tti)> {
        match self.backing {
            Backing::Single(rib) => rib.stale_agents(),
            Backing::Sharded(_) => self
                .agents()
                .into_iter()
                .filter_map(|a| a.stale_since.map(|t| (a.enb_id, t)))
                .collect(),
        }
    }

    /// Approximate heap footprint of the forest (paper Fig. 8's memory
    /// series).
    pub fn heap_bytes(&self) -> usize {
        match self.backing {
            Backing::Single(rib) => rib.heap_bytes(),
            Backing::Sharded(shards) => shards.iter().map(|s| s.rib().heap_bytes()).sum(),
        }
    }

    /// The agent's freshest synced subframe, if it syncs.
    pub fn synced_subframe(&self, enb: EnbId) -> Option<Tti> {
        self.agent(enb)?.synced_subframe()
    }

    /// Whether the agent's session is currently considered down, i.e. its
    /// RIB subtree is a snapshot from before the outage. Applications
    /// should not base control decisions on stale subtrees.
    pub fn is_stale(&self, enb: EnbId) -> bool {
        self.agent(enb).is_some_and(|a| a.is_stale())
    }
}

/// The write capability handed to applications: a staged command sink.
/// Commands are routed to the owning shards by the master after the
/// application slot. Minted only by [`Northbound::control`].
pub struct ControlHandle<'a> {
    outbox: &'a mut Vec<(EnbId, Header, FlexranMessage)>,
    guard: &'a mut ConflictGuard,
    xid: &'a mut u32,
}

impl ControlHandle<'_> {
    fn next_xid(&mut self) -> u32 {
        *self.xid = self.xid.wrapping_add(1);
        *self.xid
    }

    /// Stage an arbitrary message to an agent.
    pub fn send(&mut self, enb: EnbId, msg: FlexranMessage) -> u32 {
        let xid = self.next_xid();
        self.outbox.push((enb, Header::with_xid(xid), msg));
        xid
    }

    /// Stage a downlink scheduling command. The cell × subframe slot is
    /// claimed in the conflict guard internally; a second application
    /// targeting the same slot gets `Err(Conflict)` and nothing is staged.
    pub fn schedule_dl(&mut self, enb: EnbId, cmd: DlSchedulingCommand) -> Result<u32> {
        self.guard.claim(enb, cmd.cell, cmd.target_tti)?;
        Ok(self.send(enb, FlexranMessage::DlSchedulingCommand(cmd)))
    }

    /// Commands staged so far this slot (observability for tests).
    pub fn n_staged(&self) -> usize {
        self.outbox.len()
    }
}

/// The Registry Service: applications register here and the master runs
/// them by priority.
#[derive(Default)]
pub struct AppRegistry {
    apps: Vec<Box<dyn App>>,
}

impl AppRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an application (kept sorted: higher priority first,
    /// registration order breaking ties).
    pub fn register(&mut self, app: Box<dyn App>) {
        self.apps.push(app);
        self.apps.sort_by_key(|a| std::cmp::Reverse(a.priority()));
    }

    pub fn names(&self) -> Vec<String> {
        self.apps.iter().map(|a| a.name().to_string()).collect()
    }

    pub fn len(&self) -> usize {
        self.apps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn App>> {
        self.apps.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::master::TaskManagerConfig;

    struct Dummy(&'static str, Priority);

    impl App for Dummy {
        fn name(&self) -> &str {
            self.0
        }
        fn priority(&self) -> Priority {
            self.1
        }
        fn on_cycle(&mut self, _rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {}
    }

    #[test]
    fn registry_orders_by_priority() {
        let mut reg = AppRegistry::new();
        reg.register(Box::new(Dummy("monitor", 10)));
        reg.register(Box::new(Dummy("scheduler", 200)));
        reg.register(Box::new(Dummy("mobility", 50)));
        assert_eq!(reg.names(), vec!["scheduler", "mobility", "monitor"]);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn conflict_guard_refuses_double_claims() {
        let mut g = ConflictGuard::new();
        g.claim(EnbId(1), 0, 100).unwrap();
        let err = g.claim(EnbId(1), 0, 100).unwrap_err();
        assert_eq!(err.category(), "conflict");
        assert_eq!(g.conflicts, 1);
        // Different subframe / cell / agent is fine.
        g.claim(EnbId(1), 0, 101).unwrap();
        g.claim(EnbId(1), 1, 100).unwrap();
        g.claim(EnbId(2), 0, 100).unwrap();
    }

    #[test]
    fn conflict_guard_expiry() {
        let mut g = ConflictGuard::new();
        for t in 0..100u64 {
            g.claim(EnbId(1), 0, t).unwrap();
        }
        g.expire_before(Tti(90));
        assert_eq!(g.n_claims(), 10);
        // Expired slots can be reclaimed (time has passed; nobody can
        // schedule them anyway — deadline enforcement is the agent's job).
        g.claim(EnbId(1), 0, 5).unwrap();
    }

    #[test]
    fn facade_mints_handles_that_stage_and_guard() {
        let mut nb = Northbound::new();
        assert_eq!(Northbound::VERSION, 3);
        let cmd = DlSchedulingCommand {
            enb_id: EnbId(1),
            cell: 0,
            target_tti: 10,
            dcis: vec![],
        };
        {
            let mut ctl = nb.control();
            ctl.schedule_dl(EnbId(1), cmd.clone()).unwrap();
            assert!(
                ctl.schedule_dl(EnbId(1), cmd.clone()).is_err(),
                "second app refused"
            );
            assert_eq!(ctl.n_staged(), 1);
        }
        assert_eq!(nb.staged().len(), 1);
        assert_eq!(nb.conflicts(), 1);
        // Claims persist across handle mints within the slot — a later
        // app cannot steal an earlier app's subframe.
        {
            let mut ctl = nb.control();
            assert!(ctl.schedule_dl(EnbId(1), cmd).is_err());
        }
        // Draining hands back the staged commands in order.
        let staged = nb.take_staged();
        assert_eq!(staged.len(), 1);
        assert_eq!(staged[0].0, EnbId(1));
        assert!(nb.staged().is_empty());
    }

    #[test]
    fn rib_view_reads_and_staleness() {
        let mut rib = Rib::new();
        rib.agent_mut(EnbId(1)).last_sync = Some((Tti(90), Tti(95)));
        let view = RibView::over(Tti(100), &rib);
        assert_eq!(view.now(), Tti(100));
        assert_eq!(view.synced_subframe(EnbId(1)), Some(Tti(90)));
        assert!(!view.is_stale(EnbId(1)));
        assert!(!view.is_stale(EnbId(9)), "unknown agent is not 'stale'");
        rib.agent_mut(EnbId(1)).mark_stale(Tti(120));
        let view = RibView::over(Tti(121), &rib);
        assert!(view.is_stale(EnbId(1)));
        // The subtree survives the outage as a snapshot.
        assert_eq!(view.synced_subframe(EnbId(1)), Some(Tti(90)));
    }

    #[test]
    fn sharded_view_reads_across_shards_in_agent_order() {
        let config = TaskManagerConfig::default();
        let mut a = RibShard::new(0, 2, None, &config);
        let mut b = RibShard::new(1, 2, None, &config);
        // Shard 0 owns agent 4, shard 1 owns agents 1 and 3 — agent-id
        // order must still come out ascending.
        b.rib.agent_mut(EnbId(3)).last_sync = Some((Tti(7), Tti(8)));
        a.rib.agent_mut(EnbId(4)).mark_stale(Tti(9));
        b.rib.agent_mut(EnbId(1));
        let shards = [a, b];
        let view = RibView::sharded(Tti(10), &shards);
        assert_eq!(view.n_agents(), 3);
        let ids: Vec<EnbId> = view.agents().into_iter().map(|ag| ag.enb_id).collect();
        assert_eq!(ids, vec![EnbId(1), EnbId(3), EnbId(4)]);
        assert_eq!(view.synced_subframe(EnbId(3)), Some(Tti(7)));
        assert!(view.is_stale(EnbId(4)));
        assert!(!view.is_stale(EnbId(1)));
        assert_eq!(view.stale_agents(), vec![(EnbId(4), Tti(9))]);
        assert!(view.agent(EnbId(2)).is_none());
        assert!(view.heap_bytes() > 0);
    }
}
