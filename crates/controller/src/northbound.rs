//! The northbound API (paper §4.4).
//!
//! RAN applications "monitor the infrastructure through the information
//! obtained from the RIB and apply their control decisions through the
//! agent control modules". They never write the RIB directly. The API
//! splits those two capabilities into separate handles:
//!
//! * [`RibView`] — the read capability: master time plus the RIB forest,
//!   including per-agent session-staleness signals. Everything on it is
//!   `&self`; an application holding only a `RibView` provably cannot
//!   emit commands.
//! * [`ControlHandle`] — the write capability: a staged command sink the
//!   master dispatches after the application slot. Scheduling commands
//!   go through [`ControlHandle::schedule_dl`], which claims the
//!   cell × subframe slot in the **conflict guard** (§7.3 future work)
//!   internally — applications cannot bypass or observe other apps'
//!   claims.
//!
//! Two execution patterns (paper: periodic and event-based) map to the
//! two trait hooks: [`App::on_cycle`] runs every master TTI cycle;
//! [`App::on_event`] runs when the Event Notification Service delivers an
//! agent event. An application may use both.

use std::collections::BTreeSet;

use flexran_proto::messages::{DlSchedulingCommand, FlexranMessage, Header};
use flexran_types::ids::EnbId;
use flexran_types::time::Tti;
use flexran_types::{FlexError, Result};

use crate::rib::{AgentNode, Rib};
use crate::updater::NotifiedEvent;

/// Application priority: higher runs earlier within the apps slot (the
/// paper's Task Manager "assign\[s\] priorities to running services" —
/// e.g. a centralized MAC scheduler above a monitoring app).
pub type Priority = u8;

/// A RAN control/management application.
pub trait App: Send {
    fn name(&self) -> &str;

    /// Higher = scheduled earlier in the cycle. Time-critical apps (a
    /// centralized scheduler) should use ≥ 200; monitoring ≈ 10.
    fn priority(&self) -> Priority {
        10
    }

    /// Periodic hook: once per master TTI cycle.
    fn on_cycle(&mut self, rib: &RibView<'_>, ctl: &mut ControlHandle<'_>);

    /// Event hook: agent events delivered by the notification service.
    fn on_event(
        &mut self,
        _event: &NotifiedEvent,
        _rib: &RibView<'_>,
        _ctl: &mut ControlHandle<'_>,
    ) {
    }
}

/// Claims on cell × subframe scheduling slots, preventing two apps from
/// both scheduling the same resources.
#[derive(Debug, Default)]
pub struct ConflictGuard {
    /// Ordered so any iteration (diagnostics, future introspection) is
    /// deterministic — per-TTI controller state must never hash-iterate.
    claims: BTreeSet<(EnbId, u16, u64)>,
    /// Conflicts refused so far.
    pub conflicts: u64,
}

impl ConflictGuard {
    pub fn new() -> Self {
        Self::default()
    }

    /// Claim `(enb, cell, target)`; errors if already claimed this cycle
    /// window.
    pub fn claim(&mut self, enb: EnbId, cell: u16, target: u64) -> Result<()> {
        if self.claims.insert((enb, cell, target)) {
            Ok(())
        } else {
            self.conflicts += 1;
            Err(FlexError::Conflict(format!(
                "subframe {target} of {enb}/cell{cell} already claimed by another application"
            )))
        }
    }

    /// Drop claims older than `horizon` (they can never conflict again).
    pub fn expire_before(&mut self, horizon: Tti) {
        self.claims.retain(|(_, _, t)| *t >= horizon.0);
    }

    pub fn n_claims(&self) -> usize {
        self.claims.len()
    }
}

/// The read capability handed to applications: master time plus the RIB.
///
/// Copyable and `&self`-only — an application can fan it out to helper
/// functions freely, and holding one grants no way to emit commands.
#[derive(Clone, Copy)]
pub struct RibView<'a> {
    now: Tti,
    rib: &'a Rib,
}

impl<'a> RibView<'a> {
    pub fn new(now: Tti, rib: &'a Rib) -> Self {
        RibView { now, rib }
    }

    /// Master time of this cycle.
    pub fn now(&self) -> Tti {
        self.now
    }

    /// The full RIB forest, for traversals beyond the conveniences below.
    pub fn rib(&self) -> &'a Rib {
        self.rib
    }

    pub fn agent(&self, enb: EnbId) -> Option<&'a AgentNode> {
        self.rib.agent(enb)
    }

    /// The agent's freshest synced subframe, if it syncs.
    pub fn synced_subframe(&self, enb: EnbId) -> Option<Tti> {
        self.rib.agent(enb)?.synced_subframe()
    }

    /// Whether the agent's session is currently considered down, i.e. its
    /// RIB subtree is a snapshot from before the outage. Applications
    /// should not base control decisions on stale subtrees.
    pub fn is_stale(&self, enb: EnbId) -> bool {
        self.rib.agent(enb).is_some_and(|a| a.is_stale())
    }
}

/// The write capability handed to applications: a staged command sink.
/// Commands are dispatched by the master after the application slot.
pub struct ControlHandle<'a> {
    outbox: &'a mut Vec<(EnbId, Header, FlexranMessage)>,
    guard: &'a mut ConflictGuard,
    xid: &'a mut u32,
}

impl<'a> ControlHandle<'a> {
    /// Construct a handle manually — used by the master's Task Manager
    /// and by harnesses/tests driving an [`App`] directly.
    pub fn new(
        outbox: &'a mut Vec<(EnbId, Header, FlexranMessage)>,
        guard: &'a mut ConflictGuard,
        xid: &'a mut u32,
    ) -> Self {
        ControlHandle { outbox, guard, xid }
    }

    fn next_xid(&mut self) -> u32 {
        *self.xid = self.xid.wrapping_add(1);
        *self.xid
    }

    /// Stage an arbitrary message to an agent.
    pub fn send(&mut self, enb: EnbId, msg: FlexranMessage) -> u32 {
        let xid = self.next_xid();
        self.outbox.push((enb, Header::with_xid(xid), msg));
        xid
    }

    /// Stage a downlink scheduling command. The cell × subframe slot is
    /// claimed in the conflict guard internally; a second application
    /// targeting the same slot gets `Err(Conflict)` and nothing is staged.
    pub fn schedule_dl(&mut self, enb: EnbId, cmd: DlSchedulingCommand) -> Result<u32> {
        self.guard.claim(enb, cmd.cell, cmd.target_tti)?;
        Ok(self.send(enb, FlexranMessage::DlSchedulingCommand(cmd)))
    }

    /// Commands staged so far this slot (observability for tests).
    pub fn n_staged(&self) -> usize {
        self.outbox.len()
    }
}

/// The Registry Service: applications register here and the master runs
/// them by priority.
#[derive(Default)]
pub struct AppRegistry {
    apps: Vec<Box<dyn App>>,
}

impl AppRegistry {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register an application (kept sorted: higher priority first,
    /// registration order breaking ties).
    pub fn register(&mut self, app: Box<dyn App>) {
        self.apps.push(app);
        self.apps.sort_by_key(|a| std::cmp::Reverse(a.priority()));
    }

    pub fn names(&self) -> Vec<String> {
        self.apps.iter().map(|a| a.name().to_string()).collect()
    }

    pub fn len(&self) -> usize {
        self.apps.len()
    }

    pub fn is_empty(&self) -> bool {
        self.apps.is_empty()
    }

    pub(crate) fn iter_mut(&mut self) -> impl Iterator<Item = &mut Box<dyn App>> {
        self.apps.iter_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    struct Dummy(&'static str, Priority);

    impl App for Dummy {
        fn name(&self) -> &str {
            self.0
        }
        fn priority(&self) -> Priority {
            self.1
        }
        fn on_cycle(&mut self, _rib: &RibView<'_>, _ctl: &mut ControlHandle<'_>) {}
    }

    #[test]
    fn registry_orders_by_priority() {
        let mut reg = AppRegistry::new();
        reg.register(Box::new(Dummy("monitor", 10)));
        reg.register(Box::new(Dummy("scheduler", 200)));
        reg.register(Box::new(Dummy("mobility", 50)));
        assert_eq!(reg.names(), vec!["scheduler", "mobility", "monitor"]);
        assert_eq!(reg.len(), 3);
    }

    #[test]
    fn conflict_guard_refuses_double_claims() {
        let mut g = ConflictGuard::new();
        g.claim(EnbId(1), 0, 100).unwrap();
        let err = g.claim(EnbId(1), 0, 100).unwrap_err();
        assert_eq!(err.category(), "conflict");
        assert_eq!(g.conflicts, 1);
        // Different subframe / cell / agent is fine.
        g.claim(EnbId(1), 0, 101).unwrap();
        g.claim(EnbId(1), 1, 100).unwrap();
        g.claim(EnbId(2), 0, 100).unwrap();
    }

    #[test]
    fn conflict_guard_expiry() {
        let mut g = ConflictGuard::new();
        for t in 0..100u64 {
            g.claim(EnbId(1), 0, t).unwrap();
        }
        g.expire_before(Tti(90));
        assert_eq!(g.n_claims(), 10);
        // Expired slots can be reclaimed (time has passed; nobody can
        // schedule them anyway — deadline enforcement is the agent's job).
        g.claim(EnbId(1), 0, 5).unwrap();
    }

    #[test]
    fn control_handle_stages_and_guards() {
        let mut outbox = Vec::new();
        let mut guard = ConflictGuard::new();
        let mut xid = 0;
        let mut ctl = ControlHandle::new(&mut outbox, &mut guard, &mut xid);
        let cmd = DlSchedulingCommand {
            enb_id: EnbId(1),
            cell: 0,
            target_tti: 10,
            dcis: vec![],
        };
        ctl.schedule_dl(EnbId(1), cmd.clone()).unwrap();
        assert!(
            ctl.schedule_dl(EnbId(1), cmd).is_err(),
            "second app refused"
        );
        assert_eq!(ctl.n_staged(), 1);
        assert_eq!(outbox.len(), 1);
    }

    #[test]
    fn rib_view_reads_and_staleness() {
        let mut rib = Rib::new();
        rib.agent_mut(EnbId(1)).last_sync = Some((Tti(90), Tti(95)));
        let view = RibView::new(Tti(100), &rib);
        assert_eq!(view.now(), Tti(100));
        assert_eq!(view.synced_subframe(EnbId(1)), Some(Tti(90)));
        assert!(!view.is_stale(EnbId(1)));
        assert!(!view.is_stale(EnbId(9)), "unknown agent is not 'stale'");
        rib.agent_mut(EnbId(1)).mark_stale(Tti(120));
        let view = RibView::new(Tti(121), &rib);
        assert!(view.is_stale(EnbId(1)));
        // The subtree survives the outage as a snapshot.
        assert_eq!(view.synced_subframe(EnbId(1)), Some(Tti(90)));
    }
}
