//! Measurement utilities for reproducing the paper's figures.
//!
//! * [`ThroughputMeter`] — windowed rate from a cumulative bit counter
//!   (the "Throughput (Mb/s)" axis of Figs. 6b, 9, 10, 11, 12a).
//! * [`TimeSeries`] — `(t, value)` recorder with CSV export.
//! * [`Cdf`] — empirical CDFs (Fig. 12b).
//! * [`Stopwatch`] — wall-clock accumulation for the CPU-time
//!   measurements (Figs. 6a and 8): the paper measures the same quantity
//!   with OS accounting; we time the identical code sections directly.

use std::collections::VecDeque;
use std::time::{Duration, Instant};

use flexran_types::time::Tti;
use flexran_types::units::BitRate;

/// Windowed throughput from a cumulative bit counter.
#[derive(Debug, Clone)]
pub struct ThroughputMeter {
    window_ms: u64,
    samples: VecDeque<(Tti, u64)>,
}

impl ThroughputMeter {
    pub fn new(window_ms: u64) -> Self {
        ThroughputMeter {
            window_ms: window_ms.max(1),
            samples: VecDeque::new(),
        }
    }

    /// Record the cumulative counter value at `tti`.
    pub fn record(&mut self, tti: Tti, cumulative_bits: u64) {
        self.samples.push_back((tti, cumulative_bits));
        while let Some(&(t0, _)) = self.samples.front() {
            if tti.saturating_since(t0) > self.window_ms {
                self.samples.pop_front();
            } else {
                break;
            }
        }
    }

    /// Average rate over the retained window.
    pub fn rate(&self) -> BitRate {
        let (Some(&(t0, b0)), Some(&(t1, b1))) = (self.samples.front(), self.samples.back()) else {
            return BitRate::ZERO;
        };
        let dt = t1.saturating_since(t0);
        if dt == 0 {
            return BitRate::ZERO;
        }
        BitRate((b1.saturating_sub(b0)) * 1000 / dt)
    }
}

/// A `(seconds, value)` time series with CSV export.
#[derive(Debug, Clone, Default)]
pub struct TimeSeries {
    pub name: String,
    pub points: Vec<(f64, f64)>,
}

impl TimeSeries {
    pub fn new(name: impl Into<String>) -> Self {
        TimeSeries {
            name: name.into(),
            points: Vec::new(),
        }
    }

    pub fn push(&mut self, t_s: f64, value: f64) {
        self.points.push((t_s, value));
    }

    pub fn last(&self) -> Option<f64> {
        self.points.last().map(|p| p.1)
    }

    pub fn mean(&self) -> f64 {
        if self.points.is_empty() {
            return 0.0;
        }
        self.points.iter().map(|p| p.1).sum::<f64>() / self.points.len() as f64
    }

    pub fn max(&self) -> f64 {
        self.points
            .iter()
            .map(|p| p.1)
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// CSV rows `t,value` (no header).
    pub fn to_csv(&self) -> String {
        let mut s = String::with_capacity(self.points.len() * 16);
        for (t, v) in &self.points {
            s.push_str(&format!("{t:.3},{v:.6}\n"));
        }
        s
    }
}

/// Merge several series into one CSV with a shared time column (rows are
/// the union of time points; missing values are left empty).
pub fn merged_csv(series: &[&TimeSeries]) -> String {
    let mut times: Vec<f64> = series
        .iter()
        .flat_map(|s| s.points.iter().map(|p| p.0))
        .collect();
    times.sort_by(|a, b| a.partial_cmp(b).expect("no NaN times"));
    times.dedup_by(|a, b| (*a - *b).abs() < 1e-9);
    let mut out = String::from("t");
    for s in series {
        out.push(',');
        out.push_str(&s.name);
    }
    out.push('\n');
    for t in times {
        out.push_str(&format!("{t:.3}"));
        for s in series {
            match s
                .points
                .iter()
                .find(|p| (p.0 - t).abs() < 1e-9)
                .map(|p| p.1)
            {
                Some(v) => out.push_str(&format!(",{v:.6}")),
                None => out.push(','),
            }
        }
        out.push('\n');
    }
    out
}

/// An empirical CDF.
#[derive(Debug, Clone, Default)]
pub struct Cdf {
    values: Vec<f64>,
}

impl Cdf {
    pub fn new() -> Self {
        Self::default()
    }

    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    pub fn len(&self) -> usize {
        self.values.len()
    }

    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// `(value, P[X <= value])` points, sorted.
    pub fn points(&self) -> Vec<(f64, f64)> {
        let mut v = self.values.clone();
        v.sort_by(|a, b| a.partial_cmp(b).expect("no NaN samples"));
        let n = v.len() as f64;
        v.into_iter()
            .enumerate()
            .map(|(i, x)| (x, (i + 1) as f64 / n))
            .collect()
    }

    /// The `q`-quantile (0..=1).
    pub fn quantile(&self, q: f64) -> f64 {
        let pts = self.points();
        if pts.is_empty() {
            return 0.0;
        }
        let idx = ((q.clamp(0.0, 1.0) * (pts.len() - 1) as f64).floor()) as usize;
        pts[idx].0
    }

    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }
}

/// Wall-clock accumulation over repeated code sections.
#[derive(Debug, Clone, Default)]
pub struct Stopwatch {
    total: Duration,
    count: u64,
    max: Duration,
}

impl Stopwatch {
    pub fn new() -> Self {
        Self::default()
    }

    /// Time one execution of `f`.
    pub fn time<T>(&mut self, f: impl FnOnce() -> T) -> T {
        // A stopwatch measures wall clock by definition; its readings
        // feed reports only, never scheduling. lint:allow(wall-clock)
        let start = Instant::now();
        let out = f();
        let d = start.elapsed();
        self.total += d;
        self.count += 1;
        self.max = self.max.max(d);
        out
    }

    /// Add an externally measured duration.
    pub fn add(&mut self, d: Duration) {
        self.total += d;
        self.count += 1;
        self.max = self.max.max(d);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn total(&self) -> Duration {
        self.total
    }

    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            self.total / self.count as u32
        }
    }

    pub fn max_sample(&self) -> Duration {
        self.max
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn throughput_meter_windows() {
        let mut m = ThroughputMeter::new(1000);
        // 1000 bits per TTI = 1 Mb/s.
        for t in 0..2000u64 {
            m.record(Tti(t), t * 1000);
        }
        let r = m.rate();
        assert!((r.as_mbps_f64() - 1.0).abs() < 0.01, "{r}");
    }

    #[test]
    fn throughput_meter_reacts_to_rate_change() {
        let mut m = ThroughputMeter::new(500);
        let mut bits = 0u64;
        for t in 0..1000u64 {
            bits += 1000;
            m.record(Tti(t), bits);
        }
        for t in 1000..2000u64 {
            bits += 4000;
            m.record(Tti(t), bits);
        }
        assert!((m.rate().as_mbps_f64() - 4.0).abs() < 0.05);
    }

    #[test]
    fn empty_meter_is_zero() {
        let m = ThroughputMeter::new(100);
        assert_eq!(m.rate(), BitRate::ZERO);
    }

    #[test]
    fn cdf_points_and_quantiles() {
        let mut c = Cdf::new();
        for v in [3.0, 1.0, 2.0, 4.0] {
            c.push(v);
        }
        let pts = c.points();
        assert_eq!(pts[0], (1.0, 0.25));
        assert_eq!(pts[3], (4.0, 1.0));
        assert_eq!(c.median(), 2.0);
        assert_eq!(c.quantile(1.0), 4.0);
    }

    #[test]
    fn timeseries_stats_and_csv() {
        let mut s = TimeSeries::new("x");
        s.push(0.0, 1.0);
        s.push(1.0, 3.0);
        assert_eq!(s.mean(), 2.0);
        assert_eq!(s.max(), 3.0);
        assert_eq!(s.last(), Some(3.0));
        let csv = s.to_csv();
        assert!(csv.starts_with("0.000,1.000000\n"));
    }

    #[test]
    fn merged_csv_aligns_series() {
        let mut a = TimeSeries::new("a");
        a.push(0.0, 1.0);
        a.push(1.0, 2.0);
        let mut b = TimeSeries::new("b");
        b.push(1.0, 9.0);
        let csv = merged_csv(&[&a, &b]);
        let lines: Vec<_> = csv.lines().collect();
        assert_eq!(lines[0], "t,a,b");
        assert!(lines[1].starts_with("0.000,1.000000,"));
        assert!(lines[2].contains("9.000000"));
    }

    #[test]
    fn stopwatch_accumulates() {
        let mut w = Stopwatch::new();
        let x = w.time(|| 21 * 2);
        assert_eq!(x, 42);
        w.add(Duration::from_micros(5));
        assert_eq!(w.count(), 2);
        assert!(w.total() >= Duration::from_micros(5));
        assert!(w.max_sample() >= w.mean());
    }
}
