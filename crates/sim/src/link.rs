//! The control-channel emulator: a virtual-time `netem`.
//!
//! The paper studies the impact of the master↔agent channel with the
//! Linux `netem` tool (Fig. 9: RTT 0–60 ms) and measures the signalling
//! load over it (Fig. 7). [`SimTransport`] reproduces both: it carries
//! FlexRAN protocol messages with configurable one-way latency, jitter,
//! serialization rate and loss — all in virtual time, so runs are exactly
//! repeatable — and counts bytes per message category.
//!
//! FIFO ordering is preserved even under jitter (the real channel is TCP,
//! which never reorders).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexran_proto::category::{ByteCounters, MessageCategory};
use flexran_proto::messages::{FlexranMessage, Header};
use flexran_proto::transport::{Transport, FRAME_OVERHEAD_BYTES};
use flexran_proto::wire::WireWriter;
use flexran_types::time::Tti;
use flexran_types::units::BitRate;
use flexran_types::{FlexError, Result};

use crate::clock::VirtualClock;

/// Probabilistic fault model applied on top of a link's base
/// characteristics. All draws come from the fault handle's own seeded
/// RNG, so failure runs are exactly replayable.
#[derive(Debug, Clone, Copy, Default)]
pub struct FaultConfig {
    /// Independent per-message hard-drop probability. Unlike
    /// [`LinkConfig::loss`] (modeled as a TCP retransmit delay), a fault
    /// drop makes the message disappear — the silence a liveness tracker
    /// must detect.
    pub drop_prob: f64,
    /// Gilbert-Elliott burst loss: probability of entering the bad state
    /// (per message) and of leaving it again. While in the bad state,
    /// every message is dropped.
    pub burst: Option<BurstLoss>,
    /// Probability of a jitter spike on a delivered message.
    pub jitter_spike_prob: f64,
    /// Extra one-way delay (ms) added by a jitter spike.
    pub jitter_spike_ms: u64,
    /// Byte-level wire faults applied to delivered messages (corruption,
    /// truncation, duplication, garbage insertion).
    pub wire: Option<WireFaults>,
}

/// Byte-level wire-fault probabilities. Each delivered message draws at
/// most one of these (mutually exclusive, checked in order): a corrupted
/// or truncated frame reaches the receiver but fails to decode there, a
/// duplicated frame arrives twice, an insertion delivers one extra frame
/// of guaranteed-undecodable garbage right behind the real one.
#[derive(Debug, Clone, Copy, Default)]
pub struct WireFaults {
    /// Probability of flipping one random bit of the payload.
    pub corrupt_prob: f64,
    /// Probability of truncating the payload at a random offset.
    pub truncate_prob: f64,
    /// Probability of delivering the frame twice.
    pub duplicate_prob: f64,
    /// Probability of inserting a garbage frame behind this one.
    pub insert_prob: f64,
}

/// Two-state (good/bad) burst-loss Markov chain parameters.
#[derive(Debug, Clone, Copy)]
pub struct BurstLoss {
    /// Per-message probability of the chain flipping good → bad.
    pub enter_prob: f64,
    /// Per-message probability of the chain flipping bad → good.
    pub exit_prob: f64,
}

#[derive(Debug)]
struct FaultState {
    config: FaultConfig,
    /// Scripted partition windows `[from, until)` in virtual time.
    partitions: Vec<(Tti, Tti)>,
    /// Manual partition toggle (for open-ended outages).
    manual_partition: bool,
    in_burst: bool,
    rng: StdRng,
    dropped: u64,
    delivered: u64,
    dropped_by_cat: [u64; 8],
    corrupted_by_cat: [u64; 8],
    duplicated_by_cat: [u64; 8],
    injected: u64,
}

/// Verdict of the fault model for one message.
enum FaultVerdict {
    Deliver { extra_delay_ms: u64, mangle: Mangle },
    Drop,
}

/// Byte-level mangling decision for one delivered message. Positions are
/// drawn inside the fault handle so the whole fault stream replays from
/// one seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Mangle {
    None,
    /// Flip bit `bit` of byte `at`.
    Corrupt {
        at: usize,
        bit: u8,
    },
    /// Keep only the first `keep` bytes.
    Truncate {
        keep: usize,
    },
    /// Deliver the frame twice.
    Duplicate,
    /// Deliver one garbage frame right behind the real one.
    Insert,
}

impl FaultState {
    fn judge(&mut self, now: Tti, category: MessageCategory, payload_len: usize) -> FaultVerdict {
        if self.manual_partition
            || self
                .partitions
                .iter()
                .any(|(from, until)| *from <= now && now < *until)
        {
            self.dropped += 1;
            self.dropped_by_cat[category.index()] += 1;
            return FaultVerdict::Drop;
        }
        if let Some(burst) = self.config.burst {
            let flip = if self.in_burst {
                burst.exit_prob
            } else {
                burst.enter_prob
            };
            if self.rng.random::<f64>() < flip {
                self.in_burst = !self.in_burst;
            }
            if self.in_burst {
                self.dropped += 1;
                self.dropped_by_cat[category.index()] += 1;
                return FaultVerdict::Drop;
            }
        }
        if self.config.drop_prob > 0.0 && self.rng.random::<f64>() < self.config.drop_prob {
            self.dropped += 1;
            self.dropped_by_cat[category.index()] += 1;
            return FaultVerdict::Drop;
        }
        let extra_delay_ms = if self.config.jitter_spike_prob > 0.0
            && self.rng.random::<f64>() < self.config.jitter_spike_prob
        {
            self.config.jitter_spike_ms
        } else {
            0
        };
        let mangle = self.draw_mangle(category, payload_len);
        self.delivered += 1;
        FaultVerdict::Deliver {
            extra_delay_ms,
            mangle,
        }
    }

    fn draw_mangle(&mut self, category: MessageCategory, payload_len: usize) -> Mangle {
        let Some(w) = self.config.wire else {
            return Mangle::None;
        };
        if payload_len > 0 && w.corrupt_prob > 0.0 && self.rng.random::<f64>() < w.corrupt_prob {
            self.corrupted_by_cat[category.index()] += 1;
            return Mangle::Corrupt {
                at: self.rng.random_range(0..payload_len),
                bit: self.rng.random_range(0..8),
            };
        }
        if payload_len > 0 && w.truncate_prob > 0.0 && self.rng.random::<f64>() < w.truncate_prob {
            self.corrupted_by_cat[category.index()] += 1;
            return Mangle::Truncate {
                keep: self.rng.random_range(0..payload_len),
            };
        }
        if w.duplicate_prob > 0.0 && self.rng.random::<f64>() < w.duplicate_prob {
            self.duplicated_by_cat[category.index()] += 1;
            return Mangle::Duplicate;
        }
        if w.insert_prob > 0.0 && self.rng.random::<f64>() < w.insert_prob {
            self.injected += 1;
            return Mangle::Insert;
        }
        Mangle::None
    }
}

/// Shared, cloneable handle steering a link's fault model. Both
/// directions of a link pair consult the same handle, so a partition
/// silences the channel symmetrically — the failure mode of paper-style
/// master outages.
#[derive(Debug, Clone)]
pub struct FaultHandle(Arc<Mutex<FaultState>>);

impl FaultHandle {
    pub fn new(seed: u64) -> Self {
        FaultHandle(Arc::new(Mutex::new(FaultState {
            config: FaultConfig::default(),
            partitions: Vec::new(),
            manual_partition: false,
            in_burst: false,
            rng: StdRng::seed_from_u64(seed ^ 0xFA_17),
            dropped: 0,
            delivered: 0,
            dropped_by_cat: [0; 8],
            corrupted_by_cat: [0; 8],
            duplicated_by_cat: [0; 8],
            injected: 0,
        })))
    }

    /// Replace the probabilistic fault parameters.
    pub fn set_config(&self, config: FaultConfig) {
        self.0.lock().config = config;
    }

    /// Script a partition window `[from, until)`: every message pushed in
    /// that window, in either direction, is silently dropped.
    pub fn partition_between(&self, from: Tti, until: Tti) {
        self.0.lock().partitions.push((from, until));
    }

    /// Toggle an open-ended manual partition.
    pub fn set_partitioned(&self, on: bool) {
        self.0.lock().manual_partition = on;
    }

    /// Whether the link drops everything at `now`.
    pub fn is_partitioned(&self, now: Tti) -> bool {
        let st = self.0.lock();
        st.manual_partition
            || st
                .partitions
                .iter()
                .any(|(from, until)| *from <= now && now < *until)
    }

    /// Messages swallowed by the fault model so far.
    pub fn dropped(&self) -> u64 {
        self.0.lock().dropped
    }

    /// Messages that passed the fault model so far.
    pub fn delivered(&self) -> u64 {
        self.0.lock().delivered
    }

    /// Messages of `cat` swallowed by drops, bursts or partitions.
    pub fn dropped_by_category(&self, cat: MessageCategory) -> u64 {
        self.0.lock().dropped_by_cat[cat.index()]
    }

    /// Messages of `cat` delivered corrupted or truncated (the receiver
    /// sees a decode error instead of the message).
    pub fn corrupted_by_category(&self, cat: MessageCategory) -> u64 {
        self.0.lock().corrupted_by_cat[cat.index()]
    }

    /// Messages of `cat` delivered twice.
    pub fn duplicated_by_category(&self, cat: MessageCategory) -> u64 {
        self.0.lock().duplicated_by_cat[cat.index()]
    }

    /// Garbage frames inserted into the stream.
    pub fn injected_frames(&self) -> u64 {
        self.0.lock().injected
    }
}

/// One direction's channel characteristics.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay in ms.
    pub latency_ms: u64,
    /// Uniform jitter added on top, `0..=jitter_ms` ms.
    pub jitter_ms: u64,
    /// Serialization rate; `None` = infinite (the paper's GbE baseline is
    /// effectively rate-unconstrained for this protocol).
    pub rate: Option<BitRate>,
    /// Independent per-message loss probability (TCP would retransmit;
    /// modeled as an extra full RTT of delay instead of disappearance).
    pub loss: f64,
    pub seed: u64,
    /// Bound on the number of in-transit messages (a socket buffer /
    /// outbound queue); `0` = unbounded. At capacity the queue sheds the
    /// *oldest sheddable* message (stats reports — see
    /// [`MessageCategory::sheddable`]); liveness, commands and the other
    /// control traffic are never shed, so a full queue of stats cannot
    /// starve a heartbeat.
    pub queue_cap: usize,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_ms: 0,
            jitter_ms: 0,
            rate: None,
            loss: 0.0,
            seed: 0xF1E8,
            queue_cap: 0,
        }
    }
}

impl LinkConfig {
    /// An ideal link (dedicated fiber / same-host deployment).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A symmetric-delay link: `rtt_ms / 2` each way.
    pub fn with_one_way_ms(latency_ms: u64) -> Self {
        LinkConfig {
            latency_ms,
            ..Self::default()
        }
    }
}

struct InTransit {
    arrival: Tti,
    payload: Vec<u8>,
    category: MessageCategory,
}

/// A guaranteed-undecodable frame (no valid integrity trailer, and the
/// bytes are not even protobuf), used for fault insertion.
const GARBAGE_FRAME: [u8; 16] = [0xFF; 16];

/// The shared directed queue between two endpoints.
struct Direction {
    config: LinkConfig,
    queue: VecDeque<InTransit>,
    /// Departure horizon for rate limiting.
    next_free: Tti,
    /// Last scheduled arrival (FIFO enforcement under jitter).
    last_arrival: Tti,
    rng: StdRng,
    /// Optional shared fault model (drops, bursts, partitions, spikes,
    /// wire-level mangling).
    faults: Option<FaultHandle>,
    /// Messages removed by the bounded-queue shedder, per category.
    shed_by_cat: [u64; 8],
}

impl Direction {
    fn new(config: LinkConfig) -> Self {
        Direction {
            config,
            queue: VecDeque::new(),
            next_free: Tti::ZERO,
            last_arrival: Tti::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
            faults: None,
            shed_by_cat: [0; 8],
        }
    }

    // Named `transmit`, not `push`: a method named like the universal
    // collection verb would alias every `.push(..)` call in the workspace
    // under the lint call graph's conservative method resolution.
    fn transmit(&mut self, now: Tti, mut payload: Vec<u8>, category: MessageCategory) {
        let (fault_delay_ms, mangle) = match &self.faults {
            Some(handle) => match handle.0.lock().judge(now, category, payload.len()) {
                FaultVerdict::Drop => return,
                FaultVerdict::Deliver {
                    extra_delay_ms,
                    mangle,
                } => (extra_delay_ms, mangle),
            },
            None => (0, Mangle::None),
        };
        match mangle {
            Mangle::Corrupt { at, bit } => payload[at] ^= 1 << bit,
            Mangle::Truncate { keep } => payload.truncate(keep),
            Mangle::None | Mangle::Duplicate | Mangle::Insert => {}
        }
        let bytes = payload.len() as u64 + FRAME_OVERHEAD_BYTES;
        // Serialization delay under a rate limit.
        let start = now.max(self.next_free);
        let tx_ms = match self.config.rate {
            None => 0,
            Some(r) if r.as_bps() == 0 => 0,
            Some(r) => (bytes * 8 * 1000).div_ceil(r.as_bps()),
        };
        self.next_free = start + tx_ms;
        let jitter = if self.config.jitter_ms > 0 {
            self.rng.random_range(0..=self.config.jitter_ms)
        } else {
            0
        };
        // A "lost" message costs an extra round trip (TCP retransmission).
        let loss_penalty = if self.config.loss > 0.0 && self.rng.random::<f64>() < self.config.loss
        {
            2 * self.config.latency_ms.max(1)
        } else {
            0
        };
        let mut arrival =
            self.next_free + self.config.latency_ms + jitter + loss_penalty + fault_delay_ms;
        if arrival < self.last_arrival {
            arrival = self.last_arrival; // FIFO: never overtake
        }
        self.last_arrival = arrival;
        if mangle == Mangle::Duplicate {
            self.enqueue(InTransit {
                arrival,
                payload: payload.clone(),
                category,
            });
        }
        let insert = mangle == Mangle::Insert;
        self.enqueue(InTransit {
            arrival,
            payload,
            category,
        });
        if insert {
            self.enqueue(InTransit {
                arrival,
                payload: GARBAGE_FRAME.to_vec(),
                category,
            });
        }
    }

    /// Enqueue with bounded-queue shedding: at capacity, the oldest
    /// sheddable in-transit message makes room; if the newcomer itself is
    /// sheddable and nothing older can go, the newcomer is shed. Traffic
    /// that is not sheddable is never dropped here — the queue grows past
    /// the cap instead (the bound protects against stats floods, not
    /// against control traffic, which is low-rate by construction).
    fn enqueue(&mut self, msg: InTransit) {
        let cap = self.config.queue_cap;
        if cap > 0 && self.queue.len() >= cap {
            if let Some(pos) = self.queue.iter().position(|m| m.category.sheddable()) {
                self.shed_by_cat[self.queue[pos].category.index()] += 1;
                self.queue.remove(pos);
            } else if msg.category.sheddable() {
                self.shed_by_cat[msg.category.index()] += 1;
                return;
            }
        }
        self.queue.push_back(msg);
    }

    fn pop_due(&mut self, now: Tti) -> Option<Vec<u8>> {
        if self
            .queue
            .front()
            .map(|m| m.arrival <= now)
            .unwrap_or(false)
        {
            Some(self.queue.pop_front().expect("checked front").payload)
        } else {
            None
        }
    }
}

/// One endpoint of a simulated link.
pub struct SimTransport {
    clock: Arc<VirtualClock>,
    /// Queue this endpoint sends into.
    out: Arc<Mutex<Direction>>,
    /// Queue this endpoint receives from.
    inc: Arc<Mutex<Direction>>,
    /// Encode scratch, reused across sends.
    scratch: WireWriter,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
}

/// Create a connected pair `(a, b)`; `a_to_b` configures the a→b
/// direction, `b_to_a` the reverse.
pub fn sim_link_pair(
    clock: Arc<VirtualClock>,
    a_to_b: LinkConfig,
    b_to_a: LinkConfig,
) -> (SimTransport, SimTransport) {
    sim_link_pair_inner(clock, a_to_b, b_to_a, None)
}

/// Like [`sim_link_pair`], with a shared fault model steering both
/// directions (partitions, probabilistic drops, burst loss, jitter
/// spikes).
pub fn sim_link_pair_with_faults(
    clock: Arc<VirtualClock>,
    a_to_b: LinkConfig,
    b_to_a: LinkConfig,
    faults: FaultHandle,
) -> (SimTransport, SimTransport) {
    sim_link_pair_inner(clock, a_to_b, b_to_a, Some(faults))
}

fn sim_link_pair_inner(
    clock: Arc<VirtualClock>,
    a_to_b: LinkConfig,
    b_to_a: LinkConfig,
    faults: Option<FaultHandle>,
) -> (SimTransport, SimTransport) {
    let mut dir_ab = Direction::new(a_to_b);
    dir_ab.faults = faults.clone();
    let mut dir_ba = Direction::new(b_to_a);
    dir_ba.faults = faults;
    let ab = Arc::new(Mutex::new(dir_ab));
    let ba = Arc::new(Mutex::new(dir_ba));
    (
        SimTransport {
            clock: clock.clone(),
            out: ab.clone(),
            inc: ba.clone(),
            scratch: WireWriter::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
        SimTransport {
            clock,
            out: ba,
            inc: ab,
            scratch: WireWriter::new(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
    )
}

impl SimTransport {
    /// Messages queued towards this endpoint but not yet due.
    pub fn in_flight_towards(&self) -> usize {
        self.inc.lock().queue.len()
    }

    /// Messages of `cat` queued towards this endpoint but not yet due.
    pub fn in_flight_towards_by_category(&self, cat: MessageCategory) -> usize {
        self.inc
            .lock()
            .queue
            .iter()
            .filter(|m| m.category == cat)
            .count()
    }

    /// Messages of `cat` queued away from this endpoint but not yet due.
    pub fn in_flight_from_by_category(&self, cat: MessageCategory) -> usize {
        self.out
            .lock()
            .queue
            .iter()
            .filter(|m| m.category == cat)
            .count()
    }

    /// Messages of `cat` shed by the bounded queue flowing *towards*
    /// this endpoint (i.e. the peer sent them, the queue dropped them).
    pub fn shed_towards_by_category(&self, cat: MessageCategory) -> u64 {
        self.inc.lock().shed_by_cat[cat.index()]
    }

    /// Messages of `cat` shed by the bounded queue this endpoint sends
    /// into.
    pub fn shed_from_by_category(&self, cat: MessageCategory) -> u64 {
        self.out.lock().shed_by_cat[cat.index()]
    }
}

impl Transport for SimTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        msg.encode_into(header, &mut self.scratch);
        self.tx_counters.add(
            msg.category(),
            self.scratch.len() as u64 + FRAME_OVERHEAD_BYTES,
        );
        self.out.lock().transmit(
            self.clock.now(),
            self.scratch.as_slice().to_vec(),
            msg.category(),
        );
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        let Some(payload) = self.inc.lock().pop_due(self.clock.now()) else {
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&payload)
            .map_err(|e| FlexError::Transport(format!("undecodable frame on sim link: {e}")))?;
        self.rx_counters
            .add(msg.category(), payload.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }

    /// Models a process crash: everything queued towards this endpoint —
    /// due or not — is discarded, exactly like the kernel dropping a dead
    /// process's socket buffers.
    fn purge_inbound(&mut self) -> usize {
        let mut inc = self.inc.lock();
        let n = inc.queue.len();
        inc.queue.clear();
        n
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_proto::messages::{Echo, Hello};
    use flexran_types::ids::EnbId;

    fn msg(n: u32) -> FlexranMessage {
        FlexranMessage::Hello(Hello {
            enb_id: EnbId(n),
            n_cells: 1,
            capabilities: vec![],
            applied_config: 0,
        })
    }

    fn clocked() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    #[test]
    fn zero_latency_delivers_same_tti() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(clock.clone(), LinkConfig::ideal(), LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        let (_, m) = b.try_recv().unwrap().unwrap();
        assert_eq!(m, msg(1));
    }

    #[test]
    fn latency_holds_messages() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(
            clock.clone(),
            LinkConfig::with_one_way_ms(10),
            LinkConfig::ideal(),
        );
        a.send(Header::default(), &msg(1)).unwrap();
        for t in 0..10 {
            clock.advance_to(Tti(t));
            assert!(b.try_recv().unwrap().is_none(), "early at {t}");
        }
        clock.advance_to(Tti(10));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn fifo_preserved_under_jitter() {
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 5,
            jitter_ms: 10,
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        for i in 0..50u32 {
            a.send(Header::with_xid(i), &msg(i)).unwrap();
        }
        clock.advance_to(Tti(100));
        let mut prev = None;
        let mut n = 0;
        while let Some((h, _)) = b.try_recv().unwrap() {
            if let Some(p) = prev {
                assert!(h.xid > p, "reordered: {p} then {}", h.xid);
            }
            prev = Some(h.xid);
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn rate_limit_spreads_deliveries() {
        let clock = clocked();
        // ~1 kB messages over an 80 kb/s link: 100+ ms serialization each.
        let cfg = LinkConfig {
            rate: Some(BitRate::from_kbps(80)),
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        let big = FlexranMessage::EchoRequest(Echo {
            timestamp_us: 0,
            payload: vec![0u8; 1000],
        });
        a.send(Header::default(), &big).unwrap();
        a.send(Header::default(), &big).unwrap();
        clock.advance_to(Tti(95));
        assert!(b.try_recv().unwrap().is_none(), "still serializing");
        clock.advance_to(Tti(110));
        assert!(b.try_recv().unwrap().is_some(), "first after ~100 ms");
        assert!(b.try_recv().unwrap().is_none(), "second still serializing");
        clock.advance_to(Tti(220));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn loss_adds_rtt_penalty_not_disappearance() {
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 10,
            loss: 1.0, // every message "lost" once
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        clock.advance_to(Tti(10));
        assert!(b.try_recv().unwrap().is_none(), "lost copy delayed");
        clock.advance_to(Tti(30)); // +2*latency penalty
        assert!(b.try_recv().unwrap().is_some(), "TCP retransmit arrives");
    }

    #[test]
    fn directions_are_independent() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(
            clock.clone(),
            LinkConfig::with_one_way_ms(50),
            LinkConfig::ideal(),
        );
        b.send(Header::default(), &msg(2)).unwrap();
        // b→a is ideal even though a→b is slow.
        assert!(a.try_recv().unwrap().is_some());
    }

    #[test]
    fn partition_window_silences_both_directions() {
        let clock = clocked();
        let faults = FaultHandle::new(1);
        faults.partition_between(Tti(10), Tti(20));
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
            faults.clone(),
        );
        // Before the window: delivery works.
        a.send(Header::default(), &msg(1)).unwrap();
        assert!(b.try_recv().unwrap().is_some());
        // Inside the window: both directions black-hole.
        clock.advance_to(Tti(15));
        assert!(faults.is_partitioned(Tti(15)));
        a.send(Header::default(), &msg(2)).unwrap();
        b.send(Header::default(), &msg(3)).unwrap();
        clock.advance_to(Tti(19));
        assert!(b.try_recv().unwrap().is_none());
        assert!(a.try_recv().unwrap().is_none());
        assert_eq!(faults.dropped(), 2);
        // After the window: healed.
        clock.advance_to(Tti(20));
        assert!(!faults.is_partitioned(Tti(20)));
        a.send(Header::default(), &msg(4)).unwrap();
        let (_, m) = b.try_recv().unwrap().unwrap();
        assert_eq!(m, msg(4));
    }

    #[test]
    fn manual_partition_toggles() {
        let clock = clocked();
        let faults = FaultHandle::new(2);
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
            faults.clone(),
        );
        faults.set_partitioned(true);
        a.send(Header::default(), &msg(1)).unwrap();
        assert!(b.try_recv().unwrap().is_none());
        faults.set_partitioned(false);
        a.send(Header::default(), &msg(2)).unwrap();
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn probabilistic_drops_are_deterministic_per_seed() {
        let run = |seed: u64| -> (u64, u64) {
            let clock = clocked();
            let faults = FaultHandle::new(seed);
            faults.set_config(FaultConfig {
                drop_prob: 0.4,
                ..FaultConfig::default()
            });
            let (mut a, mut b) = sim_link_pair_with_faults(
                clock.clone(),
                LinkConfig::ideal(),
                LinkConfig::ideal(),
                faults.clone(),
            );
            let mut received = 0;
            for i in 0..200u32 {
                a.send(Header::with_xid(i), &msg(i)).unwrap();
                if b.try_recv().unwrap().is_some() {
                    received += 1;
                }
            }
            (received, faults.dropped())
        };
        let (recv_a, drop_a) = run(77);
        let (recv_b, drop_b) = run(77);
        assert_eq!((recv_a, drop_a), (recv_b, drop_b), "replay must match");
        assert_eq!(recv_a + drop_a, 200);
        assert!(drop_a > 40 && drop_a < 140, "drop count {drop_a}");
        let (recv_c, _) = run(78);
        assert_ne!(recv_a, recv_c, "different seeds diverge");
    }

    #[test]
    fn burst_loss_drops_runs_of_messages() {
        let clock = clocked();
        let faults = FaultHandle::new(5);
        faults.set_config(FaultConfig {
            burst: Some(BurstLoss {
                enter_prob: 0.05,
                exit_prob: 0.2,
            }),
            ..FaultConfig::default()
        });
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
            faults.clone(),
        );
        // Track the longest run of consecutive losses; bursts make runs.
        let mut longest_run = 0;
        let mut run = 0;
        for i in 0..500u32 {
            a.send(Header::with_xid(i), &msg(i)).unwrap();
            if b.try_recv().unwrap().is_none() {
                run += 1;
                longest_run = longest_run.max(run);
            } else {
                run = 0;
            }
        }
        assert!(faults.dropped() > 0, "some loss expected");
        assert!(longest_run >= 2, "burst model should produce loss runs");
    }

    #[test]
    fn jitter_spikes_delay_but_deliver() {
        let clock = clocked();
        let faults = FaultHandle::new(9);
        faults.set_config(FaultConfig {
            jitter_spike_prob: 1.0,
            jitter_spike_ms: 25,
            ..FaultConfig::default()
        });
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::with_one_way_ms(5),
            LinkConfig::ideal(),
            faults,
        );
        a.send(Header::default(), &msg(1)).unwrap();
        clock.advance_to(Tti(29));
        assert!(b.try_recv().unwrap().is_none(), "spike defers delivery");
        clock.advance_to(Tti(30));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn wire_corruption_surfaces_as_transport_errors() {
        let clock = clocked();
        let faults = FaultHandle::new(11);
        faults.set_config(FaultConfig {
            wire: Some(WireFaults {
                corrupt_prob: 0.5,
                truncate_prob: 0.25,
                ..WireFaults::default()
            }),
            ..FaultConfig::default()
        });
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
            faults.clone(),
        );
        let (mut ok, mut err) = (0u64, 0u64);
        for i in 0..300u32 {
            a.send(Header::with_xid(i), &msg(i)).unwrap();
            match b.try_recv() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => {}
                Err(_) => err += 1,
            }
        }
        use flexran_proto::category::MessageCategory;
        let corrupted = faults.corrupted_by_category(MessageCategory::AgentManagement);
        assert!(corrupted > 0, "mangling must have happened");
        // Corruption may still leave a decodable frame (a bit flip in a
        // string, say), so errors are a lower bound — but every mangled
        // message was still *delivered* as exactly one frame.
        assert!(err > 0, "some frames must fail to decode");
        assert_eq!(ok + err, 300);
    }

    #[test]
    fn wire_duplication_and_insertion_add_frames() {
        let clock = clocked();
        let faults = FaultHandle::new(12);
        faults.set_config(FaultConfig {
            wire: Some(WireFaults {
                duplicate_prob: 0.3,
                insert_prob: 0.3,
                ..WireFaults::default()
            }),
            ..FaultConfig::default()
        });
        let (mut a, mut b) = sim_link_pair_with_faults(
            clock.clone(),
            LinkConfig::ideal(),
            LinkConfig::ideal(),
            faults.clone(),
        );
        for i in 0..200u32 {
            a.send(Header::with_xid(i), &msg(i)).unwrap();
        }
        let (mut ok, mut err) = (0u64, 0u64);
        loop {
            match b.try_recv() {
                Ok(Some(_)) => ok += 1,
                Ok(None) => break,
                Err(_) => err += 1,
            }
        }
        use flexran_proto::category::MessageCategory;
        let dup = faults.duplicated_by_category(MessageCategory::AgentManagement);
        let inj = faults.injected_frames();
        assert!(dup > 0 && inj > 0);
        assert_eq!(ok, 200 + dup, "duplicates decode fine and arrive twice");
        assert_eq!(err, inj, "every injected garbage frame fails decode");
    }

    #[test]
    fn bounded_queue_sheds_oldest_stats_but_never_liveness() {
        use flexran_proto::category::MessageCategory;
        use flexran_proto::messages::stats::StatsReply;
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 50, // keep everything in flight
            queue_cap: 4,
            ..LinkConfig::default()
        };
        let (mut a, b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        let stats = FlexranMessage::StatsReply(StatsReply {
            enb_id: EnbId(1),
            ..StatsReply::default()
        });
        let beat = FlexranMessage::Heartbeat(flexran_proto::messages::Heartbeat {
            seq: 1,
            tti: 0,
            applied_config: 0,
        });
        for i in 0..6u32 {
            a.send(Header::with_xid(i), &stats).unwrap();
        }
        // Stats overflow: the two oldest stats replies were shed.
        assert_eq!(b.in_flight_towards(), 4);
        assert_eq!(
            b.shed_towards_by_category(MessageCategory::StatsReporting),
            2
        );
        // Liveness pushes past the cap rather than being shed, and sheds
        // older stats to make room.
        for _ in 0..6 {
            a.send(Header::default(), &beat).unwrap();
        }
        assert_eq!(b.shed_towards_by_category(MessageCategory::Liveness), 0);
        assert_eq!(
            b.in_flight_towards_by_category(MessageCategory::Liveness),
            6,
            "no heartbeat lost"
        );
        assert_eq!(
            b.shed_towards_by_category(MessageCategory::StatsReporting),
            6,
            "all remaining stats shed to make room"
        );
    }

    #[test]
    fn purge_inbound_models_a_crash() {
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 10,
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        a.send(Header::default(), &msg(2)).unwrap();
        assert_eq!(b.purge_inbound(), 2);
        clock.advance_to(Tti(20));
        assert!(b.try_recv().unwrap().is_none(), "crash lost the messages");
    }

    #[test]
    fn counters_track_categories() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(clock.clone(), LinkConfig::ideal(), LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        let _ = b.try_recv().unwrap();
        use flexran_proto::category::MessageCategory;
        assert_eq!(
            a.tx_counters().messages(MessageCategory::AgentManagement),
            1
        );
        assert_eq!(
            b.rx_counters().bytes(MessageCategory::AgentManagement),
            a.tx_counters().bytes(MessageCategory::AgentManagement)
        );
    }
}
