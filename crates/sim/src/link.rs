//! The control-channel emulator: a virtual-time `netem`.
//!
//! The paper studies the impact of the master↔agent channel with the
//! Linux `netem` tool (Fig. 9: RTT 0–60 ms) and measures the signalling
//! load over it (Fig. 7). [`SimTransport`] reproduces both: it carries
//! FlexRAN protocol messages with configurable one-way latency, jitter,
//! serialization rate and loss — all in virtual time, so runs are exactly
//! repeatable — and counts bytes per message category.
//!
//! FIFO ordering is preserved even under jitter (the real channel is TCP,
//! which never reorders).

use std::collections::VecDeque;
use std::sync::Arc;

use parking_lot::Mutex;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use flexran_proto::category::ByteCounters;
use flexran_proto::messages::{FlexranMessage, Header};
use flexran_proto::transport::{Transport, FRAME_OVERHEAD_BYTES};
use flexran_types::time::Tti;
use flexran_types::units::BitRate;
use flexran_types::{FlexError, Result};

use crate::clock::VirtualClock;

/// One direction's channel characteristics.
#[derive(Debug, Clone, Copy)]
pub struct LinkConfig {
    /// One-way propagation delay in ms.
    pub latency_ms: u64,
    /// Uniform jitter added on top, `0..=jitter_ms` ms.
    pub jitter_ms: u64,
    /// Serialization rate; `None` = infinite (the paper's GbE baseline is
    /// effectively rate-unconstrained for this protocol).
    pub rate: Option<BitRate>,
    /// Independent per-message loss probability (TCP would retransmit;
    /// modeled as an extra full RTT of delay instead of disappearance).
    pub loss: f64,
    pub seed: u64,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            latency_ms: 0,
            jitter_ms: 0,
            rate: None,
            loss: 0.0,
            seed: 0xF1E8,
        }
    }
}

impl LinkConfig {
    /// An ideal link (dedicated fiber / same-host deployment).
    pub fn ideal() -> Self {
        Self::default()
    }

    /// A symmetric-delay link: `rtt_ms / 2` each way.
    pub fn with_one_way_ms(latency_ms: u64) -> Self {
        LinkConfig {
            latency_ms,
            ..Self::default()
        }
    }
}

struct InTransit {
    arrival: Tti,
    payload: Vec<u8>,
}

/// The shared directed queue between two endpoints.
struct Direction {
    config: LinkConfig,
    queue: VecDeque<InTransit>,
    /// Departure horizon for rate limiting.
    next_free: Tti,
    /// Last scheduled arrival (FIFO enforcement under jitter).
    last_arrival: Tti,
    rng: StdRng,
}

impl Direction {
    fn new(config: LinkConfig) -> Self {
        Direction {
            config,
            queue: VecDeque::new(),
            next_free: Tti::ZERO,
            last_arrival: Tti::ZERO,
            rng: StdRng::seed_from_u64(config.seed),
        }
    }

    fn push(&mut self, now: Tti, payload: Vec<u8>) {
        let bytes = payload.len() as u64 + FRAME_OVERHEAD_BYTES;
        // Serialization delay under a rate limit.
        let start = now.max(self.next_free);
        let tx_ms = match self.config.rate {
            None => 0,
            Some(r) if r.as_bps() == 0 => 0,
            Some(r) => (bytes * 8 * 1000).div_ceil(r.as_bps()),
        };
        self.next_free = start + tx_ms;
        let jitter = if self.config.jitter_ms > 0 {
            self.rng.random_range(0..=self.config.jitter_ms)
        } else {
            0
        };
        // A "lost" message costs an extra round trip (TCP retransmission).
        let loss_penalty = if self.config.loss > 0.0 && self.rng.random::<f64>() < self.config.loss
        {
            2 * self.config.latency_ms.max(1)
        } else {
            0
        };
        let mut arrival = self.next_free + self.config.latency_ms + jitter + loss_penalty;
        if arrival < self.last_arrival {
            arrival = self.last_arrival; // FIFO: never overtake
        }
        self.last_arrival = arrival;
        self.queue.push_back(InTransit { arrival, payload });
    }

    fn pop_due(&mut self, now: Tti) -> Option<Vec<u8>> {
        if self
            .queue
            .front()
            .map(|m| m.arrival <= now)
            .unwrap_or(false)
        {
            Some(self.queue.pop_front().expect("checked front").payload)
        } else {
            None
        }
    }
}

/// One endpoint of a simulated link.
pub struct SimTransport {
    clock: Arc<VirtualClock>,
    /// Queue this endpoint sends into.
    out: Arc<Mutex<Direction>>,
    /// Queue this endpoint receives from.
    inc: Arc<Mutex<Direction>>,
    tx_counters: ByteCounters,
    rx_counters: ByteCounters,
}

/// Create a connected pair `(a, b)`; `a_to_b` configures the a→b
/// direction, `b_to_a` the reverse.
pub fn sim_link_pair(
    clock: Arc<VirtualClock>,
    a_to_b: LinkConfig,
    b_to_a: LinkConfig,
) -> (SimTransport, SimTransport) {
    let ab = Arc::new(Mutex::new(Direction::new(a_to_b)));
    let ba = Arc::new(Mutex::new(Direction::new(b_to_a)));
    (
        SimTransport {
            clock: clock.clone(),
            out: ab.clone(),
            inc: ba.clone(),
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
        SimTransport {
            clock,
            out: ba,
            inc: ab,
            tx_counters: ByteCounters::new(),
            rx_counters: ByteCounters::new(),
        },
    )
}

impl SimTransport {
    /// Messages queued towards this endpoint but not yet due.
    pub fn in_flight_towards(&self) -> usize {
        self.inc.lock().queue.len()
    }
}

impl Transport for SimTransport {
    fn send(&mut self, header: Header, msg: &FlexranMessage) -> Result<()> {
        let bytes = msg.encode(header);
        self.tx_counters
            .add(msg.category(), bytes.len() as u64 + FRAME_OVERHEAD_BYTES);
        self.out.lock().push(self.clock.now(), bytes.to_vec());
        Ok(())
    }

    fn try_recv(&mut self) -> Result<Option<(Header, FlexranMessage)>> {
        let Some(payload) = self.inc.lock().pop_due(self.clock.now()) else {
            return Ok(None);
        };
        let (header, msg) = FlexranMessage::decode(&payload)
            .map_err(|e| FlexError::Transport(format!("undecodable frame on sim link: {e}")))?;
        self.rx_counters
            .add(msg.category(), payload.len() as u64 + FRAME_OVERHEAD_BYTES);
        Ok(Some((header, msg)))
    }

    fn tx_counters(&self) -> ByteCounters {
        self.tx_counters
    }

    fn rx_counters(&self) -> ByteCounters {
        self.rx_counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_proto::messages::{Echo, Hello};
    use flexran_types::ids::EnbId;

    fn msg(n: u32) -> FlexranMessage {
        FlexranMessage::Hello(Hello {
            enb_id: EnbId(n),
            n_cells: 1,
            capabilities: vec![],
        })
    }

    fn clocked() -> Arc<VirtualClock> {
        Arc::new(VirtualClock::new())
    }

    #[test]
    fn zero_latency_delivers_same_tti() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(clock.clone(), LinkConfig::ideal(), LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        let (_, m) = b.try_recv().unwrap().unwrap();
        assert_eq!(m, msg(1));
    }

    #[test]
    fn latency_holds_messages() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(
            clock.clone(),
            LinkConfig::with_one_way_ms(10),
            LinkConfig::ideal(),
        );
        a.send(Header::default(), &msg(1)).unwrap();
        for t in 0..10 {
            clock.advance_to(Tti(t));
            assert!(b.try_recv().unwrap().is_none(), "early at {t}");
        }
        clock.advance_to(Tti(10));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn fifo_preserved_under_jitter() {
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 5,
            jitter_ms: 10,
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        for i in 0..50u32 {
            a.send(Header::with_xid(i), &msg(i)).unwrap();
        }
        clock.advance_to(Tti(100));
        let mut prev = None;
        let mut n = 0;
        while let Some((h, _)) = b.try_recv().unwrap() {
            if let Some(p) = prev {
                assert!(h.xid > p, "reordered: {p} then {}", h.xid);
            }
            prev = Some(h.xid);
            n += 1;
        }
        assert_eq!(n, 50);
    }

    #[test]
    fn rate_limit_spreads_deliveries() {
        let clock = clocked();
        // ~1 kB messages over an 80 kb/s link: 100+ ms serialization each.
        let cfg = LinkConfig {
            rate: Some(BitRate::from_kbps(80)),
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        let big = FlexranMessage::EchoRequest(Echo {
            timestamp_us: 0,
            payload: vec![0u8; 1000],
        });
        a.send(Header::default(), &big).unwrap();
        a.send(Header::default(), &big).unwrap();
        clock.advance_to(Tti(95));
        assert!(b.try_recv().unwrap().is_none(), "still serializing");
        clock.advance_to(Tti(110));
        assert!(b.try_recv().unwrap().is_some(), "first after ~100 ms");
        assert!(b.try_recv().unwrap().is_none(), "second still serializing");
        clock.advance_to(Tti(220));
        assert!(b.try_recv().unwrap().is_some());
    }

    #[test]
    fn loss_adds_rtt_penalty_not_disappearance() {
        let clock = clocked();
        let cfg = LinkConfig {
            latency_ms: 10,
            loss: 1.0, // every message "lost" once
            ..LinkConfig::default()
        };
        let (mut a, mut b) = sim_link_pair(clock.clone(), cfg, LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        clock.advance_to(Tti(10));
        assert!(b.try_recv().unwrap().is_none(), "lost copy delayed");
        clock.advance_to(Tti(30)); // +2*latency penalty
        assert!(b.try_recv().unwrap().is_some(), "TCP retransmit arrives");
    }

    #[test]
    fn directions_are_independent() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(
            clock.clone(),
            LinkConfig::with_one_way_ms(50),
            LinkConfig::ideal(),
        );
        b.send(Header::default(), &msg(2)).unwrap();
        // b→a is ideal even though a→b is slow.
        assert!(a.try_recv().unwrap().is_some());
    }

    #[test]
    fn counters_track_categories() {
        let clock = clocked();
        let (mut a, mut b) = sim_link_pair(clock.clone(), LinkConfig::ideal(), LinkConfig::ideal());
        a.send(Header::default(), &msg(1)).unwrap();
        let _ = b.try_recv().unwrap();
        use flexran_proto::category::MessageCategory;
        assert_eq!(
            a.tx_counters().messages(MessageCategory::AgentManagement),
            1
        );
        assert_eq!(
            b.rx_counters().bytes(MessageCategory::AgentManagement),
            a.tx_counters().bytes(MessageCategory::AgentManagement)
        );
    }
}
