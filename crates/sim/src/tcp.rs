//! A NewReno-style TCP download model over the LTE bearer.
//!
//! Table 2 of the paper measures "maximum achievable TCP throughput" per
//! CQI, and the MEC use case's DASH player lives on top of TCP whose
//! congestion behaviour (overshoot → queue overflow → back-off) produces
//! the reference player's buffer freezes. This model captures exactly
//! those dynamics:
//!
//! * slow start / congestion avoidance on a byte-counted window,
//! * losses signalled by bearer-queue overflow (drop-tail at the eNodeB),
//! * NewReno-style recovery (one window halving per loss episode),
//! * ACK clocking driven by the bytes the radio actually delivered,
//!   delayed by the uplink/core path.
//!
//! The flow conserves bytes by construction: `in_flight = injected −
//! acked`, with ACKs generated from the UE's cumulative delivery counter.

use std::collections::VecDeque;

use flexran_types::time::Tti;
use flexran_types::units::Bytes;

/// TCP model parameters.
#[derive(Debug, Clone, Copy)]
pub struct TcpParams {
    pub mss: u64,
    /// Initial window (RFC 6928: 10 segments).
    pub initial_window_segments: u64,
    /// eNodeB per-bearer buffer: injections beyond this are dropped
    /// (drop-tail) and signal loss.
    pub bearer_buffer: Bytes,
    /// Delay from radio delivery to ACK arrival at the sender (uplink +
    /// core network), ms.
    pub ack_delay_ms: u64,
    /// Per-TTI injection cap (sender pacing; keeps the model from dumping
    /// a whole window into one TTI).
    pub max_burst_per_tti: Bytes,
}

impl Default for TcpParams {
    fn default() -> Self {
        TcpParams {
            mss: 1400,
            initial_window_segments: 10,
            bearer_buffer: Bytes(150_000),
            ack_delay_ms: 16,
            max_burst_per_tti: Bytes(64_000),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    SlowStart,
    CongestionAvoidance,
}

/// One greedy (always-backlogged) TCP download towards a UE.
#[derive(Debug)]
pub struct TcpFlow {
    params: TcpParams,
    cwnd: f64,
    ssthresh: f64,
    phase: Phase,
    injected: u64,
    acked: u64,
    /// Last observed cumulative delivery counter (bits).
    last_delivered_bits: u64,
    /// Deliveries waiting to come back as ACKs: `(due, bytes)`.
    ack_pipe: VecDeque<(Tti, u64)>,
    /// NewReno: recovery ends once everything outstanding at the loss is
    /// acked.
    recovery_exit: Option<u64>,
    /// Counters.
    pub losses: u64,
    pub injected_total: Bytes,
}

impl TcpFlow {
    pub fn new(params: TcpParams) -> Self {
        let iw = (params.initial_window_segments * params.mss) as f64;
        TcpFlow {
            params,
            cwnd: iw,
            ssthresh: f64::INFINITY,
            phase: Phase::SlowStart,
            injected: 0,
            acked: 0,
            last_delivered_bits: 0,
            ack_pipe: VecDeque::new(),
            recovery_exit: None,
            losses: 0,
            injected_total: Bytes::ZERO,
        }
    }

    pub fn cwnd_bytes(&self) -> u64 {
        self.cwnd as u64
    }

    pub fn in_flight(&self) -> u64 {
        self.injected.saturating_sub(self.acked)
    }

    fn on_ack(&mut self, bytes: u64) {
        self.acked += bytes;
        if let Some(exit) = self.recovery_exit {
            if self.acked >= exit {
                self.recovery_exit = None;
            } else {
                return; // no window growth during recovery
            }
        }
        match self.phase {
            Phase::SlowStart => {
                self.cwnd += bytes as f64;
                if self.cwnd >= self.ssthresh {
                    self.phase = Phase::CongestionAvoidance;
                }
            }
            Phase::CongestionAvoidance => {
                self.cwnd += self.params.mss as f64 * bytes as f64 / self.cwnd.max(1.0);
            }
        }
    }

    fn on_loss(&mut self) {
        if self.recovery_exit.is_some() {
            return; // one reaction per loss episode
        }
        self.losses += 1;
        self.ssthresh = (self.in_flight() as f64 / 2.0).max(2.0 * self.params.mss as f64);
        self.cwnd = self.ssthresh;
        self.phase = Phase::CongestionAvoidance;
        self.recovery_exit = Some(self.injected);
    }

    /// Advance one TTI.
    ///
    /// * `queue_bytes` — current bearer-queue occupancy at the eNodeB,
    /// * `delivered_cum_bits` — the UE's cumulative goodput counter,
    /// * `active` — whether the application wants to send (a paused DASH
    ///   client keeps the flow alive but injects nothing).
    ///
    /// Returns the bytes to inject into the bearer this TTI.
    pub fn on_tti(
        &mut self,
        tti: Tti,
        queue_bytes: Bytes,
        delivered_cum_bits: u64,
        active: bool,
    ) -> Bytes {
        // 1. Turn new radio deliveries into future ACKs.
        let delivered_bytes = delivered_cum_bits.saturating_sub(self.last_delivered_bits) / 8;
        if delivered_bytes > 0 {
            self.last_delivered_bits = delivered_cum_bits;
            self.ack_pipe
                .push_back((tti + self.params.ack_delay_ms, delivered_bytes));
        }
        // 2. Process due ACKs.
        while let Some(&(due, bytes)) = self.ack_pipe.front() {
            if due <= tti {
                self.ack_pipe.pop_front();
                self.on_ack(bytes);
            } else {
                break;
            }
        }
        if !active {
            return Bytes::ZERO;
        }
        // 3. Inject up to the window, the pacing cap and the buffer space.
        let window_room = (self.cwnd as u64).saturating_sub(self.in_flight());
        let want = window_room.min(self.params.max_burst_per_tti.as_u64());
        let space = self
            .params
            .bearer_buffer
            .as_u64()
            .saturating_sub(queue_bytes.as_u64());
        let inject = want.min(space);
        if want > space {
            // Drop-tail at the bearer queue: congestion signal.
            self.on_loss();
        }
        self.injected += inject;
        self.injected_total += Bytes(inject);
        Bytes(inject)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A bearer that drains at a fixed rate, standing in for the radio.
    struct FakeBearer {
        queue: u64,
        delivered_bits: u64,
        drain_per_tti: u64,
    }

    impl FakeBearer {
        fn step(&mut self) {
            let tx = self.queue.min(self.drain_per_tti);
            self.queue -= tx;
            self.delivered_bits += tx * 8;
        }
    }

    fn run(drain_bytes_per_tti: u64, ttis: u64) -> (TcpFlow, FakeBearer) {
        let mut tcp = TcpFlow::new(TcpParams::default());
        let mut bearer = FakeBearer {
            queue: 0,
            delivered_bits: 0,
            drain_per_tti: drain_bytes_per_tti,
        };
        for t in 0..ttis {
            let inj = tcp.on_tti(Tti(t), Bytes(bearer.queue), bearer.delivered_bits, true);
            bearer.queue += inj.as_u64();
            bearer.step();
        }
        (tcp, bearer)
    }

    #[test]
    fn saturates_the_bottleneck() {
        // 2 Mb/s bottleneck (250 B/TTI * 8): TCP should achieve >85 % of it.
        let (_tcp, bearer) = run(250, 20_000);
        let mbps = bearer.delivered_bits as f64 / 20_000.0 / 1000.0;
        assert!(mbps > 1.7, "achieved {mbps} Mb/s of 2 Mb/s");
        // And at a faster link it scales up.
        let (_tcp, fast) = run(2500, 20_000);
        let fast_mbps = fast.delivered_bits as f64 / 20_000.0 / 1000.0;
        assert!(fast_mbps > 17.0, "achieved {fast_mbps} Mb/s of 20 Mb/s");
    }

    #[test]
    fn slow_start_grows_exponentially_then_backs_off() {
        let tcp = TcpFlow::new(TcpParams::default());
        let initial = tcp.cwnd_bytes();
        let (tcp_after, _) = run(1250, 5_000);
        assert!(tcp_after.cwnd_bytes() > initial);
        assert!(tcp_after.losses >= 1, "buffer overflow must signal loss");
    }

    #[test]
    fn window_halves_once_per_episode() {
        let mut tcp = TcpFlow::new(TcpParams::default());
        tcp.injected = 100_000;
        tcp.cwnd = 100_000.0;
        tcp.on_loss();
        let after_first = tcp.cwnd;
        tcp.on_loss(); // same episode: ignored
        assert_eq!(tcp.cwnd, after_first);
        assert_eq!(tcp.losses, 1);
        // Episode ends once the outstanding data is acked.
        tcp.on_ack(100_000);
        tcp.on_loss();
        assert_eq!(tcp.losses, 2);
    }

    #[test]
    fn inactive_flow_injects_nothing_but_keeps_acking() {
        let mut tcp = TcpFlow::new(TcpParams::default());
        let inj = tcp.on_tti(Tti(0), Bytes(0), 0, true);
        assert!(inj.as_u64() > 0);
        let inflight_before = tcp.in_flight();
        // Radio delivers everything; flow is paused.
        let delivered_bits = inj.as_u64() * 8;
        assert_eq!(
            tcp.on_tti(Tti(1), Bytes(0), delivered_bits, false),
            Bytes::ZERO
        );
        // After the ACK delay the in-flight drains even while paused.
        let mut t = 2;
        while tcp.in_flight() > 0 && t < 100 {
            tcp.on_tti(Tti(t), Bytes(0), delivered_bits, false);
            t += 1;
        }
        assert_eq!(tcp.in_flight(), 0);
        assert!(inflight_before > 0);
    }

    #[test]
    fn conservation_invariant() {
        let mut tcp = TcpFlow::new(TcpParams::default());
        let mut bearer = FakeBearer {
            queue: 0,
            delivered_bits: 0,
            drain_per_tti: 800,
        };
        for t in 0..5000 {
            let inj = tcp.on_tti(Tti(t), Bytes(bearer.queue), bearer.delivered_bits, true);
            bearer.queue += inj.as_u64();
            bearer.step();
            // injected == acked + in_flight at all times.
            assert_eq!(tcp.injected, tcp.acked + tcp.in_flight());
            // in-flight covers at least the queue (the rest is riding the
            // ACK pipe).
            assert!(tcp.in_flight() >= bearer.queue);
        }
    }
}
