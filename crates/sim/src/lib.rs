#![forbid(unsafe_code)]
//! # flexran-sim
//!
//! The virtual-time simulation substrate for the FlexRAN platform — the
//! pieces of the paper's testbed that are not FlexRAN itself:
//!
//! * [`clock`] — the shared virtual clock (1 tick = 1 TTI = 1 ms).
//! * [`link`] — the control-channel emulator: a `netem`-equivalent link
//!   with configurable latency/jitter/rate/loss carrying FlexRAN protocol
//!   messages in virtual time, with per-category byte accounting
//!   (replaces the paper's Gigabit Ethernet + `netem` setup).
//! * [`traffic`] — the EPC-side traffic generators (uniform/CBR UDP,
//!   Poisson, on-off, full-buffer) used by every throughput experiment.
//! * [`tcp`] — a NewReno-style TCP download model over the LTE bearer
//!   (the "speedtest"/iperf substitute for Table 2 and the MEC use case).
//! * [`dash`] — a DASH streaming client model with pluggable ABR: the
//!   reference throughput-rule player and the FlexRAN-assisted player.
//! * [`radio`] — per-UE channel processes and multi-cell geometry wired
//!   into the data plane's `PhyView`.
//! * [`metrics`] — throughput meters, time series, CDFs and wall-clock
//!   stopwatches used to reproduce the paper's figures.
//!
//! The full orchestration of eNodeBs + agents + master controller lives
//! in the umbrella `flexran` crate; this crate deliberately stays below
//! the control plane in the dependency order.

pub mod clock;
pub mod dash;
pub mod link;
pub mod metrics;
pub mod radio;
pub mod tcp;
pub mod traffic;

pub use clock::VirtualClock;
pub use link::{sim_link_pair, LinkConfig, SimTransport};
pub use metrics::{Cdf, Stopwatch, ThroughputMeter, TimeSeries};
pub use radio::{PhyAdapter, RadioEnvironment, UeRadio};
pub use tcp::{TcpFlow, TcpParams};
pub use traffic::{CbrSource, FullBufferSource, OnOffSource, PoissonSource, TrafficSource};
