//! A DASH adaptive-streaming client model (the MEC use case, paper §6.2).
//!
//! The client downloads fixed-duration segments over a [`TcpFlow`],
//! maintains a playback buffer, and picks the next segment's bitrate with
//! a pluggable ABR policy:
//!
//! * [`ReferenceAbr`] — the dash.js-style throughput rule with a
//!   buffer-fullness bump: when the buffer is comfortable it probes one
//!   level above the throughput estimate. This is the behaviour the paper
//!   observed ("the default player aggressively attempts to increase the
//!   bitrate when the CQI increases, setting it to 19.6 Mb/s even though
//!   the maximum achievable throughput is 15 Mb/s"), which triggers TCP
//!   congestion and buffer freezes.
//! * [`AssistedAbr`] — the FlexRAN-assisted player: follows the bitrate
//!   hint computed by the MEC application from the RAN's CQI reports
//!   (forwarded out-of-band, as in the paper).
//! * [`FixedAbr`] — pins one level (used to measure the "maximum
//!   sustainable bitrate" column of Table 2).

use std::collections::VecDeque;

use flexran_types::time::Tti;
use flexran_types::units::{BitRate, Bytes};

use crate::tcp::{TcpFlow, TcpParams};

/// Context handed to the ABR policy at each segment boundary.
#[derive(Debug, Clone)]
pub struct AbrContext {
    /// Recent per-segment throughput samples, most recent last.
    pub throughput_history: Vec<BitRate>,
    pub buffer_s: f64,
    pub buffer_max_s: f64,
    pub current_level: usize,
    /// Out-of-band bitrate hint from the MEC application, if any.
    pub hint: Option<BitRate>,
}

impl AbrContext {
    /// Harmonic mean of the last up-to-3 throughput samples (the standard
    /// dash.js estimator).
    pub fn throughput_estimate(&self) -> Option<BitRate> {
        let tail: Vec<_> = self
            .throughput_history
            .iter()
            .rev()
            .take(3)
            .map(|r| r.as_bps() as f64)
            .filter(|v| *v > 0.0)
            .collect();
        if tail.is_empty() {
            return None;
        }
        let hm = tail.len() as f64 / tail.iter().map(|v| 1.0 / v).sum::<f64>();
        Some(BitRate(hm as u64))
    }
}

/// An adaptive-bitrate policy.
pub trait Abr: Send {
    fn name(&self) -> &str;
    /// Index into the ladder for the next segment.
    fn choose(&mut self, ladder: &[BitRate], ctx: &AbrContext) -> usize;
}

fn highest_level_at_most(ladder: &[BitRate], cap: BitRate) -> usize {
    let mut level = 0;
    for (i, b) in ladder.iter().enumerate() {
        if *b <= cap {
            level = i;
        }
    }
    level
}

/// dash.js-style throughput rule with a buffer-based probe.
#[derive(Debug, Clone, Copy)]
pub struct ReferenceAbr {
    /// Probe one level up when the buffer exceeds this fraction of max.
    pub probe_buffer_fraction: f64,
}

impl Default for ReferenceAbr {
    fn default() -> Self {
        ReferenceAbr {
            probe_buffer_fraction: 0.5,
        }
    }
}

impl Abr for ReferenceAbr {
    fn name(&self) -> &str {
        "reference-throughput"
    }

    fn choose(&mut self, ladder: &[BitRate], ctx: &AbrContext) -> usize {
        let Some(est) = ctx.throughput_estimate() else {
            return 0; // startup: lowest
        };
        let mut level = highest_level_at_most(ladder, est);
        if ctx.buffer_s > self.probe_buffer_fraction * ctx.buffer_max_s {
            level = (level + 1).min(ladder.len().saturating_sub(1));
        }
        level
    }
}

/// The FlexRAN-assisted policy: follow the RAN-derived hint.
#[derive(Debug, Clone, Copy, Default)]
pub struct AssistedAbr;

impl Abr for AssistedAbr {
    fn name(&self) -> &str {
        "flexran-assisted"
    }

    fn choose(&mut self, ladder: &[BitRate], ctx: &AbrContext) -> usize {
        match ctx.hint {
            Some(hint) => highest_level_at_most(ladder, hint),
            // No hint yet: behave conservatively.
            None => 0,
        }
    }
}

/// Pin one ladder level (Table 2's sustainability probe).
#[derive(Debug, Clone, Copy)]
pub struct FixedAbr(pub usize);

impl Abr for FixedAbr {
    fn name(&self) -> &str {
        "fixed"
    }

    fn choose(&mut self, ladder: &[BitRate], _ctx: &AbrContext) -> usize {
        self.0.min(ladder.len().saturating_sub(1))
    }
}

/// DASH client configuration.
#[derive(Debug, Clone)]
pub struct DashConfig {
    /// Available representation bitrates, ascending.
    pub ladder: Vec<BitRate>,
    pub segment_s: f64,
    pub buffer_max_s: f64,
    /// Playback starts/resumes once this much is buffered.
    pub startup_buffer_s: f64,
    pub tcp: TcpParams,
}

impl DashConfig {
    /// The paper's first test video: 1.2 / 2 / 4 Mb/s.
    pub fn paper_low_ladder() -> Self {
        DashConfig {
            ladder: vec![
                BitRate::from_mbps_f64(1.2),
                BitRate::from_mbps_f64(2.0),
                BitRate::from_mbps_f64(4.0),
            ],
            segment_s: 2.0,
            buffer_max_s: 25.0,
            startup_buffer_s: 2.0,
            tcp: TcpParams::default(),
        }
    }

    /// The paper's 4K test video: 2.9 … 19.6 Mb/s.
    pub fn paper_4k_ladder() -> Self {
        DashConfig {
            ladder: vec![
                BitRate::from_mbps_f64(2.9),
                BitRate::from_mbps_f64(4.9),
                BitRate::from_mbps_f64(7.3),
                BitRate::from_mbps_f64(9.6),
                BitRate::from_mbps_f64(14.6),
                BitRate::from_mbps_f64(19.6),
            ],
            segment_s: 2.0,
            buffer_max_s: 80.0,
            startup_buffer_s: 2.0,
            tcp: TcpParams::default(),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq)]
enum Phase {
    Downloading {
        level: usize,
        segment_bits: u64,
        start_bits: u64,
        started: Tti,
    },
    Paused,
}

/// The streaming client: buffer dynamics + segment downloads over TCP.
pub struct DashClient {
    config: DashConfig,
    abr: Box<dyn Abr>,
    tcp: TcpFlow,
    phase: Phase,
    buffer_s: f64,
    playing: bool,
    started_once: bool,
    throughput_history: Vec<BitRate>,
    hint: Option<BitRate>,
    last_delivered_bits: u64,
    /// Statistics.
    pub rebuffer_events: u64,
    pub rebuffer_ms: u64,
    pub segments_completed: u64,
    /// `(time_s, bitrate_mbps)` at each segment start.
    pub bitrate_series: Vec<(f64, f64)>,
    /// `(time_s, buffer_s)` sampled every 100 ms.
    pub buffer_series: Vec<(f64, f64)>,
}

impl DashClient {
    pub fn new(config: DashConfig, abr: Box<dyn Abr>) -> Self {
        let tcp = TcpFlow::new(config.tcp);
        DashClient {
            config,
            abr,
            tcp,
            phase: Phase::Paused,
            buffer_s: 0.0,
            playing: false,
            started_once: false,
            throughput_history: Vec::new(),
            hint: None,
            last_delivered_bits: 0,
            rebuffer_events: 0,
            rebuffer_ms: 0,
            segments_completed: 0,
            bitrate_series: Vec::new(),
            buffer_series: Vec::new(),
        }
    }

    /// Out-of-band bitrate hint from the MEC application.
    pub fn set_hint(&mut self, hint: BitRate) {
        self.hint = Some(hint);
    }

    pub fn buffer_s(&self) -> f64 {
        self.buffer_s
    }

    pub fn current_bitrate(&self) -> Option<BitRate> {
        match self.phase {
            Phase::Downloading { level, .. } => Some(self.config.ladder[level]),
            Phase::Paused => None,
        }
    }

    fn start_segment(&mut self, tti: Tti, delivered_bits: u64) {
        let ctx = AbrContext {
            throughput_history: self.throughput_history.clone(),
            buffer_s: self.buffer_s,
            buffer_max_s: self.config.buffer_max_s,
            current_level: match self.phase {
                Phase::Downloading { level, .. } => level,
                Phase::Paused => 0,
            },
            hint: self.hint,
        };
        let level = self
            .abr
            .choose(&self.config.ladder, &ctx)
            .min(self.config.ladder.len() - 1);
        let bitrate = self.config.ladder[level];
        let segment_bits = (bitrate.as_bps() as f64 * self.config.segment_s) as u64;
        self.phase = Phase::Downloading {
            level,
            segment_bits,
            start_bits: delivered_bits,
            started: tti,
        };
        self.bitrate_series
            .push((tti.as_secs_f64(), bitrate.as_mbps_f64()));
    }

    /// Advance one TTI. Inputs mirror [`TcpFlow::on_tti`]; the return
    /// value is the bytes the server injects into the bearer this TTI.
    pub fn on_tti(&mut self, tti: Tti, queue_bytes: Bytes, delivered_cum_bits: u64) -> Bytes {
        self.last_delivered_bits = delivered_cum_bits;
        // Playback.
        if self.playing {
            self.buffer_s -= 0.001;
            if self.buffer_s <= 0.0 {
                self.buffer_s = 0.0;
                self.playing = false;
                self.rebuffer_events += 1;
            }
        } else {
            if self.started_once {
                self.rebuffer_ms += 1;
            }
            if self.buffer_s >= self.config.startup_buffer_s {
                self.playing = true;
                self.started_once = true;
            }
        }
        if tti.0.is_multiple_of(100) {
            self.buffer_series.push((tti.as_secs_f64(), self.buffer_s));
        }

        // Download state machine.
        match self.phase {
            Phase::Downloading {
                level,
                segment_bits,
                start_bits,
                started,
            } => {
                if delivered_cum_bits.saturating_sub(start_bits) >= segment_bits {
                    // Segment done.
                    self.segments_completed += 1;
                    self.buffer_s += self.config.segment_s;
                    let dt_ms = tti.saturating_since(started).max(1);
                    let tput = BitRate(segment_bits * 1000 / dt_ms);
                    self.throughput_history.push(tput);
                    let _ = level;
                    if self.buffer_s + self.config.segment_s > self.config.buffer_max_s {
                        self.phase = Phase::Paused;
                    } else {
                        self.start_segment(tti, delivered_cum_bits);
                    }
                }
            }
            Phase::Paused => {
                if self.buffer_s + self.config.segment_s <= self.config.buffer_max_s {
                    self.start_segment(tti, delivered_cum_bits);
                }
            }
        }

        let active = matches!(self.phase, Phase::Downloading { .. });
        self.tcp
            .on_tti(tti, queue_bytes, delivered_cum_bits, active)
    }
}

/// Ring-buffered recent throughput (helper for MEC-style hint computation
/// from CQI-derived capacity — an exponential moving average as in the
/// paper's application).
#[derive(Debug, Clone)]
pub struct Ema {
    alpha: f64,
    value: Option<f64>,
    _history: VecDeque<f64>,
}

impl Ema {
    pub fn new(alpha: f64) -> Self {
        Ema {
            alpha: alpha.clamp(0.0, 1.0),
            value: None,
            _history: VecDeque::new(),
        }
    }

    pub fn update(&mut self, sample: f64) -> f64 {
        let v = match self.value {
            None => sample,
            Some(prev) => prev + self.alpha * (sample - prev),
        };
        self.value = Some(v);
        v
    }

    pub fn value(&self) -> Option<f64> {
        self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Drive a client against a fixed-rate bearer.
    fn run_client(mut client: DashClient, capacity_bytes_per_tti: u64, ttis: u64) -> DashClient {
        let mut queue = 0u64;
        let mut delivered_bits = 0u64;
        for t in 0..ttis {
            let inj = client.on_tti(Tti(t), Bytes(queue), delivered_bits);
            queue += inj.as_u64();
            let tx = queue.min(capacity_bytes_per_tti);
            queue -= tx;
            delivered_bits += tx * 8;
        }
        client
    }

    #[test]
    fn sustainable_level_plays_without_freezes() {
        // 2 Mb/s video on a 15 Mb/s link.
        let cfg = DashConfig::paper_low_ladder();
        let client = DashClient::new(cfg, Box::new(FixedAbr(1)));
        let done = run_client(client, 1875, 120_000);
        assert!(done.segments_completed > 40, "{}", done.segments_completed);
        assert_eq!(done.rebuffer_events, 0, "no freezes at sustainable rate");
    }

    #[test]
    fn oversized_level_freezes() {
        // 4 Mb/s video on a ~1.7 Mb/s link: must rebuffer.
        let cfg = DashConfig::paper_low_ladder();
        let client = DashClient::new(cfg, Box::new(FixedAbr(2)));
        let done = run_client(client, 212, 120_000);
        assert!(done.rebuffer_events > 0, "expected freezes");
    }

    #[test]
    fn reference_abr_tracks_throughput() {
        // 2.5 Mb/s effective link: the reference ABR should mostly sit at
        // the 2 Mb/s level (occasionally probing 4).
        let cfg = DashConfig::paper_low_ladder();
        let client = DashClient::new(cfg, Box::new(ReferenceAbr::default()));
        let done = run_client(client, 312, 60_000);
        let mean_bitrate: f64 = done.bitrate_series.iter().map(|p| p.1).sum::<f64>()
            / done.bitrate_series.len().max(1) as f64;
        assert!(
            (1.2..=4.0).contains(&mean_bitrate),
            "mean bitrate {mean_bitrate}"
        );
        assert!(done.segments_completed > 20);
    }

    #[test]
    fn assisted_abr_follows_hint() {
        let cfg = DashConfig::paper_4k_ladder();
        let mut client = DashClient::new(cfg, Box::new(AssistedAbr));
        client.set_hint(BitRate::from_mbps_f64(7.5));
        let done = run_client(client, 1875, 30_000);
        // Every chosen bitrate ≤ hint, and the top hinted level is used.
        assert!(
            done.bitrate_series.iter().all(|p| p.1 <= 7.31),
            "{:?}",
            done.bitrate_series
        );
        assert!(done.bitrate_series.iter().any(|p| (p.1 - 7.3).abs() < 0.01));
    }

    #[test]
    fn abr_context_estimator_is_harmonic() {
        let ctx = AbrContext {
            throughput_history: vec![
                BitRate::from_mbps(2),
                BitRate::from_mbps(4),
                BitRate::from_mbps(8),
            ],
            buffer_s: 0.0,
            buffer_max_s: 30.0,
            current_level: 0,
            hint: None,
        };
        // Harmonic mean of 2,4,8 = 3/(1/2+1/4+1/8) = 3.428... Mb/s.
        let est = ctx.throughput_estimate().unwrap();
        assert!((est.as_mbps_f64() - 3.4286).abs() < 0.01, "{est}");
        let empty = AbrContext {
            throughput_history: vec![],
            ..ctx
        };
        assert!(empty.throughput_estimate().is_none());
    }

    #[test]
    fn ema_converges() {
        let mut e = Ema::new(0.2);
        assert_eq!(e.update(10.0), 10.0);
        for _ in 0..100 {
            e.update(4.0);
        }
        assert!((e.value().unwrap() - 4.0).abs() < 0.01);
    }

    #[test]
    fn buffer_never_exceeds_cap() {
        let cfg = DashConfig::paper_low_ladder();
        let cap = cfg.buffer_max_s;
        let client = DashClient::new(cfg, Box::new(FixedAbr(0)));
        let done = run_client(client, 6250, 120_000);
        for (_, b) in &done.buffer_series {
            assert!(*b <= cap + 1e-9, "buffer {b} over cap {cap}");
        }
    }
}
