//! The shared virtual clock.
//!
//! All simulated components — the data planes, the control-channel link,
//! the traffic models — read the same clock, advanced once per TTI by the
//! harness. Sharing happens through an `Arc`, with the tick stored
//! atomically so link endpoints on either side of a transport can read it
//! without locking.

use std::sync::atomic::{AtomicU64, Ordering};

use flexran_types::time::Tti;

/// A monotonically advancing virtual clock (1 tick = 1 TTI = 1 ms).
#[derive(Debug, Default)]
pub struct VirtualClock {
    now: AtomicU64,
}

impl VirtualClock {
    pub fn new() -> Self {
        Self::default()
    }

    /// Current virtual time.
    pub fn now(&self) -> Tti {
        Tti(self.now.load(Ordering::Acquire))
    }

    /// Advance to `tti`. Panics if time would move backwards — that is
    /// always a harness bug worth failing loudly on.
    pub fn advance_to(&self, tti: Tti) {
        let prev = self.now.swap(tti.0, Ordering::AcqRel);
        assert!(
            prev <= tti.0,
            "virtual clock moved backwards: {prev} -> {}",
            tti.0
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn advances_and_reads() {
        let c = VirtualClock::new();
        assert_eq!(c.now(), Tti(0));
        c.advance_to(Tti(5));
        assert_eq!(c.now(), Tti(5));
        c.advance_to(Tti(5)); // idempotent
        assert_eq!(c.now(), Tti(5));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn rejects_time_travel() {
        let c = VirtualClock::new();
        c.advance_to(Tti(5));
        c.advance_to(Tti(4));
    }
}
