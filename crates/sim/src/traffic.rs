//! EPC-side traffic generators.
//!
//! The paper's experiments drive the RAN with "uniform downlink UDP
//! traffic" (Figs. 7, 10, 12), full-buffer "speedtest" flows (Figs. 6, 9,
//! §5.4) and application-paced flows (TCP/DASH, modeled in [`crate::tcp`]
//! and [`crate::dash`]). A [`TrafficSource`] is polled once per TTI and
//! answers how many new bytes the core network delivers for one bearer.

use flexran_types::time::Tti;
use flexran_types::units::{BitRate, Bytes};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A per-bearer downlink (or uplink) traffic generator.
pub trait TrafficSource: Send {
    /// New bytes arriving during `tti`. `queue_depth` is the bearer's
    /// current transmission-queue occupancy, letting closed-loop sources
    /// (full-buffer) top the queue up instead of growing it unboundedly.
    fn bytes_due(&mut self, tti: Tti, queue_depth: Bytes) -> Bytes;
}

/// Constant-bit-rate (uniform UDP) traffic.
#[derive(Debug, Clone)]
pub struct CbrSource {
    rate: BitRate,
    /// Accumulator in milli-bits so fractional per-TTI amounts add up
    /// exactly (1 TTI delivers `rate_bps / 1000` bits on average).
    acc_millibits: u64,
    /// Whole bits not yet forming a full byte.
    carry_bits: u64,
}

impl CbrSource {
    pub fn new(rate: BitRate) -> Self {
        CbrSource {
            rate,
            acc_millibits: 0,
            carry_bits: 0,
        }
    }

    pub fn rate(&self) -> BitRate {
        self.rate
    }
}

impl TrafficSource for CbrSource {
    fn bytes_due(&mut self, _tti: Tti, _queue: Bytes) -> Bytes {
        self.acc_millibits += self.rate.as_bps();
        let bits = self.carry_bits + self.acc_millibits / 1000;
        self.acc_millibits %= 1000;
        self.carry_bits = bits % 8;
        Bytes(bits / 8)
    }
}

/// Poisson packet arrivals of fixed-size packets.
#[derive(Debug)]
pub struct PoissonSource {
    /// Mean packets per TTI.
    lambda: f64,
    packet_bytes: u64,
    rng: StdRng,
}

impl PoissonSource {
    /// `rate` average bit rate delivered in `packet_bytes` packets.
    pub fn new(rate: BitRate, packet_bytes: u64, seed: u64) -> Self {
        let lambda = rate.as_bps() as f64 / 1000.0 / 8.0 / packet_bytes as f64;
        PoissonSource {
            lambda,
            packet_bytes,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Knuth's algorithm — fine for the λ ≤ ~20 this simulator needs.
    fn draw_poisson(&mut self) -> u64 {
        let l = (-self.lambda).exp();
        let mut k = 0u64;
        let mut p = 1.0;
        loop {
            p *= self.rng.random::<f64>();
            if p <= l {
                return k;
            }
            k += 1;
            if k > 10_000 {
                return k; // guard against λ misconfiguration
            }
        }
    }
}

impl TrafficSource for PoissonSource {
    fn bytes_due(&mut self, _tti: Tti, _queue: Bytes) -> Bytes {
        Bytes(self.draw_poisson() * self.packet_bytes)
    }
}

/// Full-buffer ("speedtest") traffic: keeps the bearer queue topped up to
/// a target depth so the scheduler always has data.
#[derive(Debug, Clone, Copy)]
pub struct FullBufferSource {
    pub target_queue: Bytes,
}

impl Default for FullBufferSource {
    fn default() -> Self {
        FullBufferSource {
            target_queue: Bytes(500_000),
        }
    }
}

impl TrafficSource for FullBufferSource {
    fn bytes_due(&mut self, _tti: Tti, queue: Bytes) -> Bytes {
        self.target_queue.saturating_sub(queue)
    }
}

/// On-off (bursty) traffic: CBR at `rate` for `on_ms`, silent for
/// `off_ms`, repeating.
#[derive(Debug, Clone)]
pub struct OnOffSource {
    inner: CbrSource,
    on_ms: u64,
    off_ms: u64,
}

impl OnOffSource {
    pub fn new(rate: BitRate, on_ms: u64, off_ms: u64) -> Self {
        OnOffSource {
            inner: CbrSource::new(rate),
            on_ms: on_ms.max(1),
            off_ms,
        }
    }
}

impl TrafficSource for OnOffSource {
    fn bytes_due(&mut self, tti: Tti, queue: Bytes) -> Bytes {
        let phase = tti.0 % (self.on_ms + self.off_ms);
        if phase < self.on_ms {
            self.inner.bytes_due(tti, queue)
        } else {
            Bytes::ZERO
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cbr_delivers_exact_rate_over_time() {
        let mut s = CbrSource::new(BitRate::from_mbps(2));
        let mut total = Bytes::ZERO;
        for t in 0..1000 {
            total += s.bytes_due(Tti(t), Bytes::ZERO);
        }
        // 2 Mb/s over 1 s = 250 000 bytes.
        assert_eq!(total, Bytes(250_000));
    }

    #[test]
    fn cbr_fractional_rates_accumulate() {
        // 380 kb/s = 47.5 B/ms: the carry must not lose the half byte.
        let mut s = CbrSource::new(BitRate::from_kbps(380));
        let mut total = Bytes::ZERO;
        for t in 0..1000 {
            total += s.bytes_due(Tti(t), Bytes::ZERO);
        }
        let expect = 380_000 / 8;
        assert!(
            (total.as_u64() as i64 - expect as i64).abs() <= 1,
            "{total} vs {expect}"
        );
    }

    #[test]
    fn poisson_mean_matches_rate() {
        let mut s = PoissonSource::new(BitRate::from_mbps(1), 1250, 7);
        let mut total = 0u64;
        let n = 20_000;
        for t in 0..n {
            total += s.bytes_due(Tti(t), Bytes::ZERO).as_u64();
        }
        let rate_bps = total as f64 * 8.0 * 1000.0 / n as f64;
        assert!(
            (rate_bps - 1e6).abs() / 1e6 < 0.05,
            "empirical rate {rate_bps}"
        );
    }

    #[test]
    fn full_buffer_tops_up() {
        let mut s = FullBufferSource {
            target_queue: Bytes(1000),
        };
        assert_eq!(s.bytes_due(Tti(0), Bytes(0)), Bytes(1000));
        assert_eq!(s.bytes_due(Tti(1), Bytes(400)), Bytes(600));
        assert_eq!(s.bytes_due(Tti(2), Bytes(1000)), Bytes(0));
        assert_eq!(s.bytes_due(Tti(3), Bytes(2000)), Bytes(0));
    }

    #[test]
    fn on_off_is_silent_in_off_phase() {
        let mut s = OnOffSource::new(BitRate::from_mbps(8), 10, 10);
        let mut on_bytes = Bytes::ZERO;
        let mut off_bytes = Bytes::ZERO;
        for t in 0..100 {
            let b = s.bytes_due(Tti(t), Bytes::ZERO);
            if t % 20 < 10 {
                on_bytes += b;
            } else {
                off_bytes += b;
            }
        }
        assert_eq!(off_bytes, Bytes::ZERO);
        assert!(on_bytes > Bytes::ZERO);
    }
}
