//! The radio environment: per-UE channels wired into the data plane.
//!
//! Two modes per UE, freely mixable in one simulation:
//!
//! * **Process mode** — the UE's SINR follows a [`ChannelProcess`]
//!   (fixed CQI, square wave, trace, AR(1) fading). Used by every
//!   single-cell experiment.
//! * **Geometry mode** — the UE has a position ([`MobilityModel`]) and
//!   its SINR is computed from the [`Environment`]'s path loss against
//!   whichever cells transmit in the subframe. Used by the eICIC and
//!   mobility use cases, where cross-cell interference is the point.
//!
//! [`PhyAdapter`] implements the data plane's [`PhyView`] for one eNodeB
//! by mapping `(cell, rnti)` to the simulation-global UE and asking the
//! environment.

use std::collections::BTreeMap;

use flexran_phy::channel::ChannelProcess;
use flexran_phy::geometry::Environment;
use flexran_phy::mobility::MobilityModel;
use flexran_stack::enb::PhyView;
use flexran_types::ids::{CellId, Rnti, UeId};
use flexran_types::time::Tti;
use parking_lot::Mutex;

/// How one UE's radio conditions are produced.
pub enum UeRadio {
    Process(Box<dyn ChannelProcess>),
    Geo {
        mobility: Box<dyn MobilityModel>,
        /// Site index (in the [`Environment`]) of the serving cell.
        serving_site: usize,
    },
}

/// The simulation-global radio state.
///
/// Channel queries ([`RadioEnvironment::sinr_db`],
/// [`RadioEnvironment::rsrp_all_sites`]) take `&self`: each UE's
/// (stateful) channel sits behind its own mutex, so a parallel harness
/// can drive many eNodeBs against one shared environment. Every UE is
/// only ever queried by its serving eNodeB, so the locks are
/// uncontended and the per-UE query order — hence every RNG draw — is
/// independent of thread interleaving.
pub struct RadioEnvironment {
    env: Option<Environment>,
    ues: BTreeMap<UeId, Mutex<UeRadio>>,
    /// Sites transmitting in the current subframe (geometry mode).
    active_sites: Vec<usize>,
    /// SINR for UEs nobody registered (harness bugs surface as terrible
    /// radio, not a panic).
    pub default_sinr_db: f64,
}

impl Default for RadioEnvironment {
    fn default() -> Self {
        Self::new()
    }
}

impl RadioEnvironment {
    /// Process-mode-only environment.
    pub fn new() -> Self {
        RadioEnvironment {
            env: None,
            ues: BTreeMap::new(),
            active_sites: Vec::new(),
            default_sinr_db: -20.0,
        }
    }

    /// Environment with multi-cell geometry.
    pub fn with_geometry(env: Environment) -> Self {
        RadioEnvironment {
            env: Some(env),
            ues: BTreeMap::new(),
            active_sites: Vec::new(),
            default_sinr_db: -20.0,
        }
    }

    pub fn register_ue(&mut self, ue: UeId, radio: UeRadio) {
        self.ues.insert(ue, Mutex::new(radio));
    }

    /// Re-home a geometry-mode UE after handover.
    pub fn set_serving_site(&self, ue: UeId, site: usize) {
        if let Some(radio) = self.ues.get(&ue) {
            if let UeRadio::Geo { serving_site, .. } = &mut *radio.lock() {
                *serving_site = site;
            }
        }
    }

    /// Set which sites transmit this subframe (geometry mode; call before
    /// the eNodeBs' `finish_tti`). Copies into an internal buffer whose
    /// capacity is reused, so per-TTI updates never allocate.
    pub fn set_active_sites(&mut self, sites: &[usize]) {
        self.active_sites.clear();
        self.active_sites.extend_from_slice(sites);
    }

    /// SINR for a UE at `tti`.
    pub fn sinr_db(&self, ue: UeId, tti: Tti) -> f64 {
        match self.ues.get(&ue) {
            None => self.default_sinr_db,
            Some(radio) => match &mut *radio.lock() {
                UeRadio::Process(p) => p.sinr_db(tti),
                UeRadio::Geo {
                    mobility,
                    serving_site,
                } => {
                    let pos = mobility.position(tti);
                    match &self.env {
                        None => self.default_sinr_db,
                        Some(env) => env.sinr_db(*serving_site, pos, &self.active_sites),
                    }
                }
            },
        }
    }

    /// RSRP of every site at the UE's current position (geometry mode;
    /// feeds measurement reports for the mobility manager). Empty in
    /// process mode.
    pub fn rsrp_all_sites(&self, ue: UeId, tti: Tti) -> Vec<(usize, f64)> {
        let Some(radio) = self.ues.get(&ue) else {
            return Vec::new();
        };
        let UeRadio::Geo { mobility, .. } = &mut *radio.lock() else {
            return Vec::new();
        };
        let pos = mobility.position(tti);
        let Some(env) = &self.env else {
            return Vec::new();
        };
        (0..env.n_sites())
            .map(|i| (i, env.rsrp_dbm(i, pos).0))
            .collect()
    }

    /// Number of registered UEs.
    pub fn n_ues(&self) -> usize {
        self.ues.len()
    }
}

/// [`PhyView`] for one eNodeB, backed by the global radio environment.
///
/// Holds the environment by shared reference so one environment can
/// serve many eNodeBs concurrently (see [`RadioEnvironment`]).
pub struct PhyAdapter<'a> {
    pub radio: &'a RadioEnvironment,
    /// `(cell, rnti)` → simulation-global UE for this eNodeB.
    pub rnti_map: &'a BTreeMap<(CellId, Rnti), UeId>,
}

impl PhyView for PhyAdapter<'_> {
    fn sinr_db(&mut self, cell: CellId, rnti: Rnti, tti: Tti) -> f64 {
        match self.rnti_map.get(&(cell, rnti)) {
            Some(ue) => self.radio.sinr_db(*ue, tti),
            None => self.radio.default_sinr_db,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use flexran_phy::channel::FixedCqi;
    use flexran_phy::geometry::{PathLossModel, Position, TxSite};
    use flexran_phy::link_adaptation::{cqi_from_sinr, Cqi};
    use flexran_phy::mobility::Stationary;
    use flexran_types::units::Dbm;

    #[test]
    fn process_mode_reports_configured_cqi() {
        let mut radio = RadioEnvironment::new();
        radio.register_ue(UeId(1), UeRadio::Process(Box::new(FixedCqi(Cqi(10)))));
        let s = radio.sinr_db(UeId(1), Tti(5));
        assert_eq!(cqi_from_sinr(s), Cqi(10));
    }

    #[test]
    fn unknown_ue_gets_default() {
        let radio = RadioEnvironment::new();
        assert_eq!(radio.sinr_db(UeId(9), Tti(0)), -20.0);
    }

    #[test]
    fn geometry_mode_couples_interference() {
        let mut env = Environment::new(10_000_000);
        let macro_ = env.add_site(TxSite {
            position: Position::new(0.0, 0.0),
            tx_power: Dbm(43.0),
            path_loss: PathLossModel::UrbanMacro,
        });
        let small = env.add_site(TxSite {
            position: Position::new(400.0, 0.0),
            tx_power: Dbm(30.0),
            path_loss: PathLossModel::SmallCell,
        });
        let mut radio = RadioEnvironment::with_geometry(env);
        radio.register_ue(
            UeId(1),
            UeRadio::Geo {
                mobility: Box::new(Stationary(Position::new(410.0, 0.0))),
                serving_site: small,
            },
        );
        radio.set_active_sites(&[macro_, small]);
        let interfered = radio.sinr_db(UeId(1), Tti(0));
        radio.set_active_sites(&[small]);
        let clean = radio.sinr_db(UeId(1), Tti(1));
        assert!(clean > interfered + 5.0);
    }

    #[test]
    fn adapter_maps_rnti_to_ue() {
        let mut radio = RadioEnvironment::new();
        radio.register_ue(UeId(1), UeRadio::Process(Box::new(FixedCqi(Cqi(15)))));
        let mut map = BTreeMap::new();
        map.insert((CellId(0), Rnti(0x100)), UeId(1));
        let mut phy = PhyAdapter {
            radio: &radio,
            rnti_map: &map,
        };
        let good = phy.sinr_db(CellId(0), Rnti(0x100), Tti(0));
        assert_eq!(cqi_from_sinr(good), Cqi(15));
        let missing = phy.sinr_db(CellId(0), Rnti(0x999), Tti(0));
        assert_eq!(cqi_from_sinr(missing), Cqi(0));
    }

    #[test]
    fn handover_rehoming_changes_serving_site() {
        let mut env = Environment::new(10_000_000);
        let a = env.add_site(TxSite {
            position: Position::new(0.0, 0.0),
            tx_power: Dbm(43.0),
            path_loss: PathLossModel::UrbanMacro,
        });
        let b = env.add_site(TxSite {
            position: Position::new(1000.0, 0.0),
            tx_power: Dbm(43.0),
            path_loss: PathLossModel::UrbanMacro,
        });
        let mut radio = RadioEnvironment::with_geometry(env);
        radio.register_ue(
            UeId(1),
            UeRadio::Geo {
                mobility: Box::new(Stationary(Position::new(900.0, 0.0))),
                serving_site: a,
            },
        );
        radio.set_active_sites(&[a, b]);
        let far = radio.sinr_db(UeId(1), Tti(0));
        radio.set_serving_site(UeId(1), b);
        let near = radio.sinr_db(UeId(1), Tti(1));
        assert!(near > far, "serving the close cell must be better");
        // RSRP list covers both sites.
        let rsrp = radio.rsrp_all_sites(UeId(1), Tti(2));
        assert_eq!(rsrp.len(), 2);
        assert!(rsrp[1].1 > rsrp[0].1);
    }
}
